"""Two-pattern transition-fault simulation support.

Both registered fault-simulation backends detect a transition fault with
the classic full-scan reduction (see :mod:`repro.faults.transition`):

    pair ``(v1, v2)`` detects slow-to-rise at ``s``  iff
    ``s = 0`` under ``v1``  and  ``s`` stuck-at-0 is detected by ``v2``

so a transition detection word is the AND of two words that existing
machinery already produces:

* the **initialization word** — bit ``p`` set iff the fault line holds
  the required initial value under launch vector ``p``.  That is one
  fault-free simulation of the launch half, shared by *all* faults of a
  query — no per-fault propagation at all;
* the **stuck-at detection word** of :meth:`TransitionFault.as_stuck_at`
  over the capture half — exactly the hot path each backend optimizes
  (event-driven early exit for ``bigint``, batched level-parallel tensors
  for ``numpy``), reused rather than duplicated.

:class:`TwoPatternSupport` is the mixin that adds the contract to a
backend: ``load_pairs`` stages a :class:`PatternPairSet` (fault-free
launch simulation + a normal capture-half ``load``), and
``transition_detection_words`` runs the reduction.  A backend only has to
override :meth:`TwoPatternSupport._launch_values` when it owns a faster
fault-free simulator than the default big-int one.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.circuit.flatten import CompiledCircuit
from repro.errors import SimulationError
from repro.faults.transition import TransitionFault, check_transition_fault
from repro.sim.patterns import PatternPairSet
from repro.utils.bitvec import full_mask
from repro.utils.detmatrix import DetectionMatrix


def launch_line_word(circ: CompiledCircuit, launch_good: Sequence[int],
                     fault: TransitionFault) -> int:
    """Fault-free value word of the fault's line under the launch block.

    A branch carries the same fault-free value as its driver stem, so
    both cases read one node word of the launch simulation.
    """
    if fault.is_stem:
        return launch_good[fault.node]
    return launch_good[circ.fanin[fault.node][fault.pin]]


def initialization_word(circ: CompiledCircuit, launch_good: Sequence[int],
                        fault: TransitionFault, mask: int) -> int:
    """Bit ``p`` set iff launch vector ``p`` initializes ``fault``'s line.

    Slow-to-rise needs the line at 0 under ``v1``; slow-to-fall at 1.
    """
    line = launch_line_word(circ, launch_good, fault) & mask
    return (line ^ mask) if fault.rise else line


class TwoPatternSupport:
    """Mixin implementing the two-pattern backend contract.

    Requires the host class to provide the single-pattern contract
    (``circ``, ``load``, ``num_patterns``, ``detection_words``).  The
    host's ``load`` must reset :attr:`_launch_good` to ``None`` so a
    plain single-vector ``load`` invalidates any staged pair block.
    """

    #: Fault-free launch-half node words; ``None`` until ``load_pairs``.
    _launch_good = None

    def load_pairs(self, pairs: PatternPairSet) -> None:
        """Stage a two-pattern block: simulate both fault-free halves.

        After this call ``num_patterns`` is the number of pairs and
        ``detection_words`` refers to the capture half (it *is* a loaded
        single-vector block); ``transition_detection_words`` combines
        both halves.
        """
        if pairs.num_inputs != self.circ.num_inputs:
            raise SimulationError(
                f"{self.circ.name}: pair set has {pairs.num_inputs} "
                f"inputs, circuit has {self.circ.num_inputs}"
            )
        launch = self._launch_values(pairs.launch)
        self.load(pairs.capture)
        self._launch_good = launch

    def _launch_values(self, patterns) -> List[int]:
        """Fault-free node words of the launch half (override to go faster)."""
        from repro.sim.bitsim import simulate

        return simulate(self.circ, patterns)

    def transition_detection_word(self, fault: TransitionFault) -> int:
        """Bit ``p`` set iff loaded pair ``p`` detects ``fault``."""
        return self.transition_detection_words([fault])[0]

    def transition_detection_words(self, faults: Sequence[TransitionFault]
                                   ) -> List[int]:
        """Transition detection word per fault, in input order."""
        launch_good = self._launch_good
        if launch_good is None:
            raise SimulationError(
                "no pattern-pair block loaded; call load_pairs() first"
            )
        for fault in faults:
            check_transition_fault(self.circ, fault)
        mask = full_mask(self.num_patterns)
        stuck_words = self.detection_words(
            [fault.as_stuck_at() for fault in faults]
        )
        return [
            initialization_word(self.circ, launch_good, fault, mask) & word
            for fault, word in zip(faults, stuck_words)
        ]

    def transition_detection_matrix(self, faults: Sequence[TransitionFault]
                                    ) -> DetectionMatrix:
        """Packed transition detection matrix (one row per fault).

        The reduction stays packed: the capture-half stuck-at matrix
        comes from the host's (possibly native) ``detection_matrix``,
        the launch-half initialization words pack once, and the AND is
        one vectorized word operation.
        """
        launch_good = self._launch_good
        if launch_good is None:
            raise SimulationError(
                "no pattern-pair block loaded; call load_pairs() first"
            )
        from repro.fsim.backend import backend_detection_matrix

        for fault in faults:
            check_transition_fault(self.circ, fault)
        stuck = backend_detection_matrix(
            self, [fault.as_stuck_at() for fault in faults]
        )
        mask = full_mask(self.num_patterns)
        init = DetectionMatrix.from_bigints(
            (initialization_word(self.circ, launch_good, fault, mask)
             for fault in faults),
            self.num_patterns,
        )
        return stuck & init

    def detected_transition_faults(self, faults: Sequence[TransitionFault]
                                   ) -> List[TransitionFault]:
        """Subset of ``faults`` detected by at least one loaded pair."""
        words = self.transition_detection_words(faults)
        return [f for f, w in zip(faults, words) if w]
