"""Parallel-pattern single-fault propagation (PPSFP).

One call propagates one fault across an entire pattern block: the
fault-free value of every node is a big-int word (from
:func:`repro.sim.bitsim.simulate`), the fault is injected at its site, and
only *changed* nodes are re-evaluated, in topological order, until the
difference dies or reaches primary outputs.

Cost properties that make the whole reproduction tractable in Python:

* a fault that no pattern excites costs O(1) (one XOR at the site);
* propagation stops the moment the faulty/fault-free difference mask goes
  to zero on the whole frontier;
* node ids are topological, so a min-heap on node id is a correct event
  queue and every node is evaluated at most once per fault.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Sequence

from repro.circuit.flatten import CompiledCircuit
from repro.errors import SimulationError
from repro.faults.model import Fault, check_fault
from repro.fsim.backend import BackendCapabilities, PackedQueryAdapter
from repro.fsim.transition import TwoPatternSupport
from repro.sim.bitsim import eval_gate_words, simulate
from repro.sim.patterns import PatternSet
from repro.utils.bitvec import full_mask


def _inject(circ: CompiledCircuit, good: Sequence[int], fault: Fault,
            mask: int) -> tuple[int, int]:
    """Compute the faulty word at the fault's node.

    Returns ``(node, faulty_word)``; for a branch fault the node is the
    consuming gate re-evaluated with the faulty pin forced.
    """
    stuck_word = mask if fault.value else 0
    if fault.is_stem:
        return fault.node, stuck_word
    srcs = circ.fanin[fault.node]
    words = [good[s] for s in srcs]
    words[fault.pin] = stuck_word
    faulty = eval_gate_words(circ.node_type[fault.node], words, mask)
    return fault.node, faulty


def detection_word(circ: CompiledCircuit, good: Sequence[int], fault: Fault,
                   num_patterns: int) -> int:
    """Bit ``p`` of the result is set iff pattern ``p`` detects ``fault``.

    ``good`` must be the fault-free node words for the same pattern block
    (length ``circ.num_nodes``).
    """
    check_fault(circ, fault)
    mask = full_mask(num_patterns)
    start, faulty_word = _inject(circ, good, fault, mask)
    diff = (good[start] ^ faulty_word) & mask
    if not diff:
        return 0

    faulty: Dict[int, int] = {start: faulty_word}
    detected = diff if circ.is_output[start] else 0

    heap: List[int] = []
    queued = {start}
    for nxt in circ.fanout[start]:
        if nxt not in queued:
            queued.add(nxt)
            heappush(heap, nxt)

    fanin = circ.fanin
    fanout = circ.fanout
    node_type = circ.node_type
    is_output = circ.is_output

    while heap:
        node = heappop(heap)
        words = [faulty.get(s, good[s]) for s in fanin[node]]
        value = eval_gate_words(node_type[node], words, mask)
        delta = (value ^ good[node]) & mask
        if not delta:
            continue
        faulty[node] = value
        if is_output[node]:
            detected |= delta
        for nxt in fanout[node]:
            if nxt not in queued:
                queued.add(nxt)
                heappush(heap, nxt)
    return detected


def detection_words(circ: CompiledCircuit, faults: Sequence[Fault],
                    patterns: PatternSet) -> List[int]:
    """Detection word of every fault in ``faults`` over ``patterns``."""
    good = simulate(circ, patterns)
    n = patterns.num_patterns
    return [detection_word(circ, good, f, n) for f in faults]


def detects(circ: CompiledCircuit, vector: Sequence[int], fault: Fault) -> bool:
    """Does the single input ``vector`` detect ``fault``?"""
    patterns = PatternSet.from_vectors([list(vector)], circ.num_inputs)
    good = simulate(circ, patterns)
    return bool(detection_word(circ, good, fault, 1))


class ParallelFaultSimulator(PackedQueryAdapter, TwoPatternSupport):
    """Binds a circuit and reuses fault-free values across fault queries.

    Typical use: simulate a pattern block once with :meth:`load`, then ask
    for many faults' detection words.  This is the ``bigint`` entry of the
    backend registry (:mod:`repro.fsim.backend`): event-driven per-fault
    propagation with early exit, cheapest for single-fault queries and
    small problems.  Two-pattern transition queries (``load_pairs`` /
    ``transition_detection_words``) come from
    :class:`repro.fsim.transition.TwoPatternSupport` and reuse the same
    per-fault propagation on the capture half.  Packed-matrix queries
    pack the big-int words once
    (:class:`repro.fsim.backend.PackedQueryAdapter`).
    """

    name = "bigint"
    capabilities = BackendCapabilities(
        batched=False, incremental=True,
        description="event-driven big-int PPSFP with early exit",
    )

    def __init__(self, circ: CompiledCircuit):
        self.circ = circ
        self._good: List[int] | None = None
        self._num_patterns = 0

    def load(self, patterns: PatternSet) -> None:
        """Simulate the fault-free circuit for a pattern block."""
        self._good = simulate(self.circ, patterns)
        self._num_patterns = patterns.num_patterns
        self._launch_good = None

    @property
    def num_patterns(self) -> int:
        """Width of the loaded block (0 before :meth:`load`)."""
        return self._num_patterns

    @property
    def good_values(self) -> List[int]:
        """Fault-free node words of the loaded block."""
        if self._good is None:
            raise SimulationError("no pattern block loaded; call load() first")
        return self._good

    def detection_word(self, fault: Fault) -> int:
        """Detection word of ``fault`` over the loaded block."""
        if self._good is None:
            raise SimulationError("no pattern block loaded; call load() first")
        return detection_word(self.circ, self._good, fault, self._num_patterns)

    def detection_words(self, faults: Sequence[Fault]) -> List[int]:
        """Detection word of every fault (a loop — this engine is per-fault)."""
        return [self.detection_word(f) for f in faults]

    def detected_faults(self, faults: Sequence[Fault]) -> List[Fault]:
        """Subset of ``faults`` detected by at least one loaded pattern."""
        return [f for f in faults if self.detection_word(f)]
