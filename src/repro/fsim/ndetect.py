"""n-detection fault simulation.

A fault is simulated until it has been detected ``n`` times, then dropped.
The paper (Section 2) notes that ``ndet(u)`` — the number of faults each
vector detects — can be estimated with n-detection simulation instead of
full no-dropping simulation; this module provides that alternative
estimator, benchmarked as an ablation against the exact one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.circuit.flatten import CompiledCircuit
from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.fsim.backend import FaultSimBackend, detection_words
from repro.sim.patterns import PatternSet
from repro.utils.bitvec import iter_bits

BackendArg = Union[str, FaultSimBackend, None]


def detection_counts(circ: CompiledCircuit, faults: Sequence[Fault],
                     patterns: PatternSet, n: Optional[int] = None,
                     backend: BackendArg = None) -> Dict[Fault, int]:
    """Per-fault detection counts, capped at ``n`` (uncapped when None)."""
    if n is not None and n < 1:
        raise SimulationError("n must be >= 1")
    words = detection_words(circ, faults, patterns, backend=backend)
    counts: Dict[Fault, int] = {}
    for fault, word in zip(faults, words):
        count = word.bit_count()
        if n is not None and count > n:
            count = n
        counts[fault] = count
    return counts


def ndet_per_vector(circ: CompiledCircuit, faults: Sequence[Fault],
                    patterns: PatternSet, n: Optional[int] = None,
                    backend: BackendArg = None) -> np.ndarray:
    """``ndet(u)`` for every vector ``u``.

    With ``n=None`` this is the paper's exact definition: simulation of
    all faults without dropping, counting for each vector how many faults
    it detects.  With an integer ``n``, each fault contributes only to its
    first ``n`` detecting vectors (n-detection estimate).
    """
    if n is not None and n < 1:
        raise SimulationError("n must be >= 1")
    width = patterns.num_patterns
    ndet = np.zeros(width, dtype=np.int64)
    for word in detection_words(circ, faults, patterns, backend=backend):
        if not word:
            continue
        if n is None:
            for u in iter_bits(word):
                ndet[u] += 1
        else:
            taken = 0
            for u in iter_bits(word):
                ndet[u] += 1
                taken += 1
                if taken >= n:
                    break
    return ndet


def redundancy_candidates(circ: CompiledCircuit, faults: Sequence[Fault],
                          patterns: PatternSet,
                          backend: BackendArg = None) -> List[Fault]:
    """Faults never detected by ``patterns`` — candidates for ATPG/proofs.

    A helper for redundancy identification flows: random patterns weed out
    the easy faults so the expensive exhaustive ATPG only sees the rest.
    """
    counts = detection_counts(circ, faults, patterns, n=1, backend=backend)
    return [f for f in faults if counts[f] == 0]
