"""n-detection fault simulation.

A fault is simulated until it has been detected ``n`` times, then dropped.
The paper (Section 2) notes that ``ndet(u)`` — the number of faults each
vector detects — can be estimated with n-detection simulation instead of
full no-dropping simulation; this module provides that alternative
estimator, benchmarked as an ablation against the exact one.

All three entry points work on the packed
:class:`~repro.utils.detmatrix.DetectionMatrix` directly: counts are
vectorized row popcounts, ``ndet(u)`` a column sum, and the capped
variant a cumulative-sum mask over the dense bit matrix — the per-fault
``iter_bits`` loops this module used to run are gone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.circuit.flatten import CompiledCircuit
from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.fsim.backend import FaultSimBackend, detection_matrix
from repro.sim.patterns import PatternSet
BackendArg = Union[str, FaultSimBackend, None]


def detection_counts(circ: CompiledCircuit, faults: Sequence[Fault],
                     patterns: PatternSet, n: Optional[int] = None,
                     backend: BackendArg = None) -> Dict[Fault, int]:
    """Per-fault detection counts, capped at ``n`` (uncapped when None)."""
    if n is not None and n < 1:
        raise SimulationError("n must be >= 1")
    matrix = detection_matrix(circ, faults, patterns, backend=backend)
    counts = matrix.row_popcounts()
    if n is not None:
        counts = np.minimum(counts, n)
    return {fault: int(count) for fault, count in zip(faults, counts)}


def ndet_per_vector(circ: CompiledCircuit, faults: Sequence[Fault],
                    patterns: PatternSet, n: Optional[int] = None,
                    backend: BackendArg = None) -> np.ndarray:
    """``ndet(u)`` for every vector ``u``.

    With ``n=None`` this is the paper's exact definition: simulation of
    all faults without dropping, counting for each vector how many faults
    it detects.  With an integer ``n``, each fault contributes only to its
    first ``n`` detecting vectors (n-detection estimate).
    """
    if n is not None and n < 1:
        raise SimulationError("n must be >= 1")
    matrix = detection_matrix(circ, faults, patterns, backend=backend)
    if n is None:
        return matrix.column_counts()
    width = patterns.num_patterns
    ndet = np.zeros(width, dtype=np.int64)
    if not len(faults) or not width:
        return ndet
    # A fault contributes to vector u iff bit u is set AND at most n-1
    # earlier bits are set: mask the dense bit rows by their cumsum.
    for __, bits in matrix.iter_dense_chunks():
        taken = bits.cumsum(axis=1, dtype=np.int64)
        ndet += ((bits != 0) & (taken <= n)).sum(axis=0, dtype=np.int64)
    return ndet


def redundancy_candidates(circ: CompiledCircuit, faults: Sequence[Fault],
                          patterns: PatternSet,
                          backend: BackendArg = None) -> List[Fault]:
    """Faults never detected by ``patterns`` — candidates for ATPG/proofs.

    A helper for redundancy identification flows: random patterns weed out
    the easy faults so the expensive exhaustive ATPG only sees the rest.
    """
    matrix = detection_matrix(circ, faults, patterns, backend=backend)
    detected = matrix.any_rows()
    return [f for f, hit in zip(faults, detected) if not hit]
