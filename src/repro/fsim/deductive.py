"""Deductive fault simulation (Armstrong's algorithm).

One pass over the circuit per input vector *deduces*, for every line, the
set of single stuck-at faults that would flip that line's value — so all
detected faults fall out of a single traversal, instead of one faulty
re-simulation per fault.

Propagation rules for a gate with controlling value ``c`` (good output
value ``v``), writing ``L(x)`` for the fault list of line ``x``:

* no input at ``c``:   ``L(out) = union of L(i)``
  (flipping any subset of the non-controlling inputs puts a controlling
  value on some input, flipping the output);
* some inputs at ``c``: ``L(out) = intersection over controlling inputs
  of L(i), minus the union over non-controlling inputs of L(i)``
  (the fault must flip *every* controlling input and no other);
* XOR family:          a fault flips the output iff it flips an odd
  number of inputs — computed by counting memberships.

Fault-site adjustment: after the propagated list is computed, faults
located *on* the line replace propagation — a stuck-at-``u`` fault on a
line with good value ``v`` is in the line's list iff ``u != v``.

The test suite checks the deduced detected-fault set against the PPSFP
simulator on every circuit; the benchmark suite compares their speed as
an ablation (deductive wins when many faults are simulated against few
vectors, PPSFP wins on wide pattern blocks).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.circuit.flatten import CompiledCircuit
from repro.circuit.gate_types import GateType, controlling_value
from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.sim.bitsim import simulate_vector
from repro.sim.patterns import PatternSet


def _site_adjust(propagated: Set[Fault], site_faults: Sequence[Fault],
                 good_value: int) -> Set[Fault]:
    """Replace propagation by locality for faults on this very line."""
    adjusted = set(propagated)
    for fault in site_faults:
        adjusted.discard(fault)
        if fault.value != good_value:
            adjusted.add(fault)
    return adjusted


def deductive_fault_lists(
    circ: CompiledCircuit,
    faults: Sequence[Fault],
    vector: Sequence[int],
) -> Dict[int, Set[Fault]]:
    """Per-node fault lists for one input vector.

    ``faults`` restricts which faults are tracked (normally the collapsed
    representatives).  Returns ``node -> set of faults that flip it``.
    """
    if len(vector) != circ.num_inputs:
        raise SimulationError(
            f"vector has {len(vector)} values, expected {circ.num_inputs}"
        )
    values = simulate_vector(circ, vector)
    tracked = set(faults)

    stem_faults: Dict[int, List[Fault]] = {}
    branch_faults: Dict[Tuple[int, int], List[Fault]] = {}
    for fault in faults:
        if fault.is_stem:
            stem_faults.setdefault(fault.node, []).append(fault)
        else:
            branch_faults.setdefault(fault.site(), []).append(fault)

    lists: Dict[int, Set[Fault]] = {}
    for node in range(circ.num_nodes):
        gtype = circ.node_type[node]
        if node < circ.num_inputs:
            propagated: Set[Fault] = set()
        else:
            srcs = circ.fanin[node]
            pin_lists: List[Set[Fault]] = []
            pin_values: List[int] = []
            for pin, src in enumerate(srcs):
                pin_list = lists[src]
                pin_value = values[src] & 1
                site = branch_faults.get((node, pin))
                if site:
                    pin_list = _site_adjust(pin_list, site, pin_value)
                pin_lists.append(pin_list)
                pin_values.append(pin_value)
            propagated = _propagate_gate(gtype, pin_values, pin_lists)
        own = stem_faults.get(node)
        if own:
            propagated = _site_adjust(propagated, own, values[node] & 1)
        lists[node] = propagated
    return lists


def _propagate_gate(gtype: GateType, pin_values: List[int],
                    pin_lists: List[Set[Fault]]) -> Set[Fault]:
    """Apply the deductive propagation rule for one gate."""
    if gtype in (GateType.CONST0, GateType.CONST1):
        return set()
    if gtype in (GateType.BUF, GateType.NOT):
        return set(pin_lists[0])
    if gtype in (GateType.XOR, GateType.XNOR):
        counts: Dict[Fault, int] = {}
        for pin_list in pin_lists:
            for fault in pin_list:
                counts[fault] = counts.get(fault, 0) + 1
        return {fault for fault, k in counts.items() if k % 2 == 1}

    ctrl = controlling_value(gtype)
    if ctrl is None:
        raise SimulationError(f"no deductive rule for {gtype!r}")
    controlling_pins = [
        i for i, v in enumerate(pin_values) if v == ctrl
    ]
    if not controlling_pins:
        result: Set[Fault] = set()
        for pin_list in pin_lists:
            result |= pin_list
        return result
    # Every controlling input must flip; no non-controlling input may.
    result = set(pin_lists[controlling_pins[0]])
    for i in controlling_pins[1:]:
        result &= pin_lists[i]
        if not result:
            return result
    for i, pin_list in enumerate(pin_lists):
        if pin_values[i] != ctrl:
            result -= pin_list
            if not result:
                break
    return result


def deductive_detected(circ: CompiledCircuit, faults: Sequence[Fault],
                       vector: Sequence[int]) -> Set[Fault]:
    """Faults detected by one vector (union of the output fault lists)."""
    lists = deductive_fault_lists(circ, faults, vector)
    detected: Set[Fault] = set()
    for out in circ.outputs:
        detected |= lists[out]
    return detected


def deductive_drop_simulate(circ: CompiledCircuit, faults: Sequence[Fault],
                            patterns: PatternSet) -> Dict[Fault, int]:
    """Fault-dropping simulation built on the deductive engine.

    Returns ``fault -> first detecting vector index`` — the same contract
    as :func:`repro.fsim.dropping.drop_simulate` (property-tested equal).
    """
    remaining: Set[Fault] = set(faults)
    first: Dict[Fault, int] = {}
    for p in range(patterns.num_patterns):
        if not remaining:
            break
        detected = deductive_detected(
            circ, sorted(remaining), patterns.vector(p)
        )
        for fault in detected:
            first[fault] = p
        remaining -= detected
    return first
