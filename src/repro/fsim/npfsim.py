"""Batched word-parallel fault simulation on numpy ``uint64`` arrays.

The ``numpy`` entry of the backend registry (:mod:`repro.fsim.backend`).
Where the big-int PPSFP engine propagates one fault at a time with an
event queue, this engine re-simulates the whole circuit for a *batch* of
faults at once:

* the pattern block is packed into ``W = ceil(P / 64)`` ``uint64`` words;
* the circuit is levelized **once** per backend instance into contiguous
  per-level gate arrays (:class:`repro.sim.npsim.LevelSchedule`);
* a value tensor of shape ``(num_nodes, B, W)`` carries ``B`` faulty
  machines side by side; every level is one numpy gather/op/scatter per
  (gate type, arity) group, evaluated across all gates of the group, all
  faults of the batch and all words of the block simultaneously;
* faults are injected between levels: a stem fault overwrites its node's
  row with the stuck word after the node's level is evaluated, a branch
  fault re-evaluates the consuming gate's row with the faulty pin forced;
* detection sets fall out as the OR over primary outputs of
  ``faulty XOR fault-free``, masked to the block width, and stay packed:
  :meth:`NumpyFaultSim.detection_matrix` hands the ``uint64`` tensor to
  consumers as a :class:`repro.utils.detmatrix.DetectionMatrix` with no
  big-int round-trip (``detection_words`` is the compatibility view).

Per gate the work is ``B × W`` machine words in C, so the Python-level
cost per batch is proportional to the number of *gate groups*, not to
``gates × faults`` — the asymptotic win the ADI pipeline needs on large
circuits (see ``benchmarks/bench_fsim_backends.py`` for the measured
speedup and crossover).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.flatten import CompiledCircuit
from repro.errors import SimulationError
from repro.faults.model import Fault, check_fault
from repro.fsim.backend import BackendCapabilities
from repro.fsim.transition import TwoPatternSupport
from repro.sim.npsim import (
    ONES64,
    LevelSchedule,
    _eval_odd_gate,
    matrix_row_to_int,
    simulate_matrix_levelized,
    words_to_matrix,
)
from repro.sim.patterns import PatternSet
from repro.utils.detmatrix import DetectionMatrix

#: Soft cap on the value tensor, in bytes; batches are sized to fit.
DEFAULT_BATCH_BYTES = 128 << 20

#: Hard cap on faults per batch (keeps per-level scatter lists short).
MAX_BATCH_FAULTS = 1024


class NumpyFaultSim(TwoPatternSupport):
    """Batched fault-simulation backend over ``uint64`` pattern words.

    Conforms to :class:`repro.fsim.backend.FaultSimBackend`.  Construction
    levelizes the circuit; :meth:`load` packs and simulates the fault-free
    block; :meth:`detection_words` runs batches of full faulty-machine
    simulations.  Transition queries (``load_pairs`` /
    ``transition_detection_words``, from
    :class:`repro.fsim.transition.TwoPatternSupport`) simulate the launch
    half through the same :class:`LevelSchedule` and feed the capture half
    to the batched stuck-at path, so the expensive part stays vectorized.
    """

    name = "numpy"
    capabilities = BackendCapabilities(
        batched=True, incremental=False,
        description="levelized uint64 word-parallel batches",
    )

    def __init__(self, circ: CompiledCircuit,
                 max_batch_bytes: int = DEFAULT_BATCH_BYTES):
        self.circ = circ
        self.schedule = LevelSchedule(circ)
        self.max_batch_bytes = max_batch_bytes
        self._good: Optional[np.ndarray] = None  # (num_nodes, W)
        self._good_ints: Optional[List[int]] = None
        self._num_patterns = 0
        self._num_words = 0
        self._tail_mask = ONES64

    # -- FaultSimBackend interface -------------------------------------------

    def load(self, patterns: PatternSet) -> None:
        """Pack and simulate the fault-free circuit for a pattern block."""
        if patterns.num_inputs != self.circ.num_inputs:
            raise SimulationError(
                f"{self.circ.name}: pattern set has {patterns.num_inputs} "
                f"inputs, circuit has {self.circ.num_inputs}"
            )
        matrix = words_to_matrix(patterns.words, patterns.num_patterns)
        self._good = simulate_matrix_levelized(
            self.circ, matrix, schedule=self.schedule
        )
        self._good_ints = None
        self._num_patterns = patterns.num_patterns
        self._num_words = matrix.shape[1]
        tail_bits = patterns.num_patterns - 64 * (self._num_words - 1)
        self._tail_mask = (
            ONES64 if tail_bits >= 64
            else np.uint64((1 << max(tail_bits, 0)) - 1)
        )
        self._launch_good = None

    def _launch_values(self, patterns: PatternSet) -> List[int]:
        """Launch-half fault-free words via the levelized matrix simulator."""
        matrix = words_to_matrix(patterns.words, patterns.num_patterns)
        values = simulate_matrix_levelized(
            self.circ, matrix, schedule=self.schedule
        )
        return [
            matrix_row_to_int(values[node], patterns.num_patterns)
            for node in range(self.circ.num_nodes)
        ]

    @property
    def num_patterns(self) -> int:
        """Width of the loaded block (0 before :meth:`load`)."""
        return self._num_patterns

    @property
    def good_values(self) -> List[int]:
        """Fault-free node words as big-ints (PPSFP-compatible view)."""
        good = self._require_loaded()
        if self._good_ints is None:
            self._good_ints = [
                matrix_row_to_int(good[node], self._num_patterns)
                for node in range(self.circ.num_nodes)
            ]
        return self._good_ints

    def detection_word(self, fault: Fault) -> int:
        """Single-fault query (a batch of one — prefer batched calls)."""
        return self.detection_words([fault])[0]

    def detection_matrix(self, faults: Sequence[Fault]) -> DetectionMatrix:
        """Packed detection matrix of every fault — the native query.

        Returns the engine's internal ``(num_faults, num_words)`` uint64
        tensor directly; no big-int round-trip anywhere.
        """
        good = self._require_loaded()
        for fault in faults:
            check_fault(self.circ, fault)
        if not faults or self._num_patterns == 0:
            return DetectionMatrix.zeros(len(faults), self._num_patterns)
        batch = self._batch_size()
        blocks = [
            self._simulate_batch(good, faults[start:start + batch])
            for start in range(0, len(faults), batch)
        ]
        rows = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
        return DetectionMatrix(rows, self._num_patterns)

    def detection_words(self, faults: Sequence[Fault]) -> List[int]:
        """Detection word of every fault, in input order (big-int view)."""
        return self.detection_matrix(faults).to_bigints()

    def detected_faults(self, faults: Sequence[Fault]) -> List[Fault]:
        """Subset of ``faults`` detected by at least one loaded pattern."""
        words = self.detection_words(faults)
        return [f for f, w in zip(faults, words) if w]

    # -- internals ------------------------------------------------------------

    def _require_loaded(self) -> np.ndarray:
        if self._good is None:
            raise SimulationError("no pattern block loaded; call load() first")
        return self._good

    def _batch_size(self) -> int:
        per_fault = self.circ.num_nodes * max(self._num_words, 1) * 8
        fit = max(1, self.max_batch_bytes // max(per_fault, 1))
        return int(min(fit, MAX_BATCH_FAULTS))

    def _simulate_batch(self, good: np.ndarray,
                        faults: Sequence[Fault]) -> np.ndarray:
        circ = self.circ
        num_batch = len(faults)
        width = self._num_words

        values = np.empty((circ.num_nodes, num_batch, width), dtype=np.uint64)
        values[: circ.num_inputs] = good[: circ.num_inputs, None, :]

        # Bucket injections by the level at which they take effect: a stem
        # fault right after its node's value exists, a branch fault when
        # the consuming gate is evaluated.
        stem_rows: Dict[int, List[Tuple[int, int]]] = {}
        branch_rows: Dict[int, List[Tuple[int, int]]] = {}
        for row, fault in enumerate(faults):
            bucket = stem_rows if fault.is_stem else branch_rows
            bucket.setdefault(circ.level[fault.node], []).append((row, fault.node))

        def inject_stems(level_number: int) -> None:
            for row, node in stem_rows.get(level_number, ()):
                fault = faults[row]
                values[node, row, :] = ONES64 if fault.value else 0

        def inject_branches(level_number: int) -> None:
            for row, node in branch_rows.get(level_number, ()):
                fault = faults[row]
                stuck = (
                    np.full(width, ONES64, dtype=np.uint64)
                    if fault.value else np.zeros(width, dtype=np.uint64)
                )
                srcs = circ.fanin[node]
                words = [values[s, row, :] for s in srcs]
                words[fault.pin] = stuck
                values[node, row, :] = _eval_gate_rows(
                    circ, node, words
                )

        inject_stems(0)  # primary-input stem faults
        for level in self.schedule.levels:
            self.schedule.eval_level(level, values)
            inject_stems(level.number)
            inject_branches(level.number)

        out_ids = np.asarray(circ.outputs, dtype=np.int64)
        diff = values[out_ids] ^ good[out_ids][:, None, :]
        detected = np.bitwise_or.reduce(diff, axis=0)  # (B, W)
        detected[:, -1] &= self._tail_mask
        return detected


def _eval_gate_rows(circ: CompiledCircuit, node: int,
                    words: List[np.ndarray]) -> np.ndarray:
    """Evaluate one gate for one fault row, given per-pin word rows."""
    scratch = np.stack(words)
    return _eval_odd_gate(
        circ.node_type[node], scratch, tuple(range(len(words)))
    )
