"""Fault-dropping simulation with strict vector-order semantics.

Vectors are conceptually applied one at a time; a fault is dropped at its
*first* detecting vector.  Because first-detection is the same with or
without dropping, the simulator processes patterns in parallel blocks for
speed and then resolves order inside each block — the results are
bit-identical to a one-vector-at-a-time loop (property-tested).  Each
block is queried as a packed :class:`~repro.utils.detmatrix.
DetectionMatrix`, so first-detection indices and survivors come from
vectorized lowest-set-bit / row-any reductions over ``uint64`` words
rather than per-fault big-int scans.

This single routine powers three of the paper's needs:

* the selection of ``U`` (simulate random vectors "until approximately
  90% of the circuit faults are detected", Section 4);
* fault-coverage curves of generated test sets (Figure 1);
* the per-test first-detection data behind the ``AVE`` metric (Table 7).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuit.flatten import CompiledCircuit
from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.faults.registry import PatternBlock as _PatternBlock
from repro.faults.registry import (
    query_detection_matrix as _query_detection_matrix,
)
from repro.faults.registry import query_detection_words as _query_detection_words
from repro.fsim.backend import FaultSimBackend, resolve_backend

#: Canonical homes of the names that moved to the fault-model registry.
_MOVED_TO_REGISTRY = {
    "PatternBlock": _PatternBlock,
    "query_detection_words": _query_detection_words,
}


def __getattr__(name: str):
    """Deprecated aliases for symbols that moved to the fault-model registry.

    ``PatternBlock`` and ``query_detection_words`` now live in
    :mod:`repro.faults.registry`, where the dispatch on pattern-container
    types is owned by the registered :class:`~repro.faults.registry.FaultModel`
    entries.  Importing them from here still works but emits a
    :class:`DeprecationWarning`.
    """
    if name in _MOVED_TO_REGISTRY:
        warnings.warn(
            f"repro.fsim.dropping.{name} moved to repro.faults.registry; "
            "update the import (the alias will be removed in a future "
            "release)",
            DeprecationWarning,
            stacklevel=2,
        )
        return _MOVED_TO_REGISTRY[name]
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


@dataclass
class DropSimResult:
    """Outcome of a fault-dropping run.

    ``num_simulated`` is the number of vectors actually consumed (smaller
    than the supplied set when a stop fraction was hit).
    """

    total_faults: int
    num_simulated: int
    first_detection: Dict[Fault, int] = field(default_factory=dict)

    @property
    def num_detected(self) -> int:
        """Faults detected within the consumed prefix."""
        return len(self.first_detection)

    @property
    def coverage(self) -> float:
        """Detected fraction of the supplied fault list."""
        if self.total_faults == 0:
            return 1.0
        return self.num_detected / self.total_faults

    def detections_per_vector(self) -> List[int]:
        """Count of first detections at each consumed vector."""
        counts = [0] * self.num_simulated
        for idx in self.first_detection.values():
            counts[idx] += 1
        return counts

    def coverage_curve(self) -> List[int]:
        """Cumulative detected-fault counts: entry i = detected by vectors 0..i.

        This is the paper's ``nord(i)`` sequence (1-based in the paper).
        """
        curve: List[int] = []
        running = 0
        for count in self.detections_per_vector():
            running += count
            curve.append(running)
        return curve

    def undetected(self, faults: Sequence[Fault]) -> List[Fault]:
        """Subset of ``faults`` not detected by the consumed prefix."""
        return [f for f in faults if f not in self.first_detection]


def drop_simulate(
    circ: CompiledCircuit,
    faults: Sequence[Fault],
    patterns: _PatternBlock,
    chunk_size: int = 64,
    stop_fraction: Optional[float] = None,
    backend: Union[str, FaultSimBackend, None] = None,
) -> DropSimResult:
    """Simulate ``patterns`` in order with fault dropping.

    When ``stop_fraction`` is given, simulation stops at the exact vector
    whose detections push coverage to at least that fraction of
    ``len(faults)``; faults first detected by later vectors stay
    undetected, matching the paper's truncation of ``U``.

    ``patterns`` may be a :class:`PatternSet` of stuck-at vectors or a
    :class:`PatternPairSet` of two-pattern transition tests (then
    ``faults`` must be transition faults); ``backend`` selects the
    fault-simulation engine used per chunk (see :mod:`repro.fsim.backend`).
    """
    if stop_fraction is not None and not 0.0 < stop_fraction <= 1.0:
        raise SimulationError("stop_fraction must be in (0, 1]")
    total = len(faults)
    result = DropSimResult(total_faults=total, num_simulated=0)
    if total == 0:
        result.num_simulated = patterns.num_patterns if stop_fraction is None else 0
        return result
    target = None
    if stop_fraction is not None:
        # Smallest detected-count reaching the fraction.
        target = -(-total * stop_fraction // 1)
        target = int(target)

    engine = resolve_backend(circ, backend)
    remaining: List[Fault] = list(faults)
    detected_count = 0
    base = 0
    for chunk in patterns.chunks(chunk_size):
        width = chunk.num_patterns
        # Per-chunk first detection, vectorized: one packed matrix query,
        # one lowest-set-bit reduction over its uint64 words, survivors
        # via row-any — no per-fault big-int scans.
        matrix = _query_detection_matrix(engine, chunk, remaining)
        first = matrix.first_set_bits()
        chunk_hits: List[Tuple[int, Fault]] = [
            (int(first[row]), remaining[row])
            for row in np.flatnonzero(first >= 0)
        ]
        survivors: List[Fault] = [
            remaining[row] for row in np.flatnonzero(first < 0)
        ]

        if target is not None and detected_count + len(chunk_hits) >= target:
            # The threshold falls inside this chunk: replay detections in
            # vector order to find the exact crossing vector.
            chunk_hits.sort(key=lambda hit: hit[0])
            crossing_local = None
            running = detected_count
            per_vector: Dict[int, List[Fault]] = {}
            for local, fault in chunk_hits:
                per_vector.setdefault(local, []).append(fault)
            for local in range(width):
                hits = per_vector.get(local, [])
                running += len(hits)
                if running >= target:
                    crossing_local = local
                    break
            if crossing_local is not None:
                for local, fault in chunk_hits:
                    if local <= crossing_local:
                        result.first_detection[fault] = base + local
                result.num_simulated = base + crossing_local + 1
                return result

        for local, fault in chunk_hits:
            result.first_detection[fault] = base + local
        detected_count += len(chunk_hits)
        remaining = survivors
        base += width
        if not remaining:
            # All faults detected; consuming further vectors changes
            # nothing, but the curve should still cover the full set when
            # no stop fraction was requested.
            break

    if stop_fraction is None:
        result.num_simulated = patterns.num_patterns
    else:
        result.num_simulated = base
    return result


def coverage_curve(circ: CompiledCircuit, faults: Sequence[Fault],
                   tests: _PatternBlock, chunk_size: int = 64,
                   backend: Union[str, FaultSimBackend, None] = None
                   ) -> List[int]:
    """The paper's ``nord(i)`` sequence for a test set, full length.

    ``tests`` may be single vectors or two-pattern pairs (with a matching
    fault model in ``faults``), like :func:`drop_simulate`.
    """
    result = drop_simulate(circ, faults, tests, chunk_size=chunk_size,
                           backend=backend)
    curve = result.coverage_curve()
    # drop_simulate may exit early when everything is detected; pad the
    # curve so it always has one entry per test vector.
    while len(curve) < tests.num_patterns:
        curve.append(curve[-1] if curve else 0)
    return curve
