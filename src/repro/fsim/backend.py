"""Unified fault-simulation backend layer.

Every pipeline stage that needs detection words — ADI computation,
n-detection analysis, fault dropping, ordered test generation, fault
dictionaries — goes through one engine contract instead of calling a
specific simulator:

* :class:`FaultSimBackend` — the protocol: bind a circuit, ``load`` a
  pattern block, answer ``detection_word`` / ``detection_words`` queries
  (bit ``p`` set iff pattern ``p`` detects the fault, identical across
  backends, property-tested).  The two-pattern extension — ``load_pairs``
  a :class:`repro.sim.patterns.PatternPairSet`, answer
  ``transition_detection_words`` for transition faults — follows the same
  bit-identical contract (see :mod:`repro.fsim.transition`).
* a **registry** — backends register under a short name; consumers take a
  ``backend=`` argument (name or instance) and resolve it here, so one
  argument — or the ``REPRO_FSIM_BACKEND`` environment variable — switches
  the whole pipeline.

Registered backends:

``bigint``
    The event-driven PPSFP engine of :mod:`repro.fsim.parallel`: one
    Python big-int word per node, per-fault propagation that stops as
    soon as the faulty/fault-free difference dies.  Cheapest for single
    faults and narrow blocks.
``numpy``
    The word-parallel batched engine of :mod:`repro.fsim.npfsim`:
    patterns packed into ``uint64`` words, whole *batches* of faults
    propagated level-by-level with masked numpy ops.  Fastest for large
    circuits × many faults × wide blocks.
``parallel``
    The sharded multi-core engine of :mod:`repro.fsim.sharded`: the
    fault universe is split into contiguous shards, each simulated by a
    worker process running a base engine, and the packed per-shard
    detection-matrix rows are reassembled bit-identically.  Fastest when
    the single-core numpy engine saturates (10k+-gate circuits); spec
    strings like ``parallel:4:numpy`` pin the shard count / base engine.
``auto``
    :class:`AutoFaultSim` — picks per query using circuit size, fault
    count and block width thresholds.  The default.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

from repro.circuit.flatten import CompiledCircuit
from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.sim.patterns import PatternPairSet, PatternSet
from repro.telemetry import span
from repro.utils.detmatrix import DetectionMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.faults.transition import TransitionFault

#: Environment variable naming the default backend for the whole process.
BACKEND_ENV_VAR = "REPRO_FSIM_BACKEND"

#: Backend used when neither ``backend=`` nor the env var says otherwise.
DEFAULT_BACKEND = "auto"


@dataclass(frozen=True)
class BackendCapabilities:
    """Static traits consumers may use to pick or tune a backend.

    ``batched`` — ``detection_words`` is amortized over fault batches
    (faster than a loop of ``detection_word`` calls).
    ``incremental`` — single-fault queries are cheap (event-driven with
    early exit), so interleaving queries with dropping costs little.
    """

    batched: bool
    incremental: bool
    description: str = ""


@runtime_checkable
class FaultSimBackend(Protocol):
    """The engine contract every fault-simulation backend implements.

    Lifecycle: construct with a :class:`CompiledCircuit`, :meth:`load` a
    pattern block, then query detection words.  ``load`` may be called
    again with a new block at any time; queries always refer to the most
    recently loaded block.
    """

    name: str
    capabilities: BackendCapabilities
    circ: CompiledCircuit

    def load(self, patterns: PatternSet) -> None:
        """Simulate the fault-free circuit for a pattern block."""

    @property
    def num_patterns(self) -> int:
        """Width of the loaded block (0 before :meth:`load`)."""

    def detection_word(self, fault: Fault) -> int:
        """Bit ``p`` set iff loaded pattern ``p`` detects ``fault``."""

    def detection_words(self, faults: Sequence[Fault]) -> List[int]:
        """Detection word per fault, in input order."""

    def detection_matrix(self, faults: Sequence[Fault]) -> DetectionMatrix:
        """Packed ``uint64`` detection matrix, one row per fault.

        Row ``f`` is ``detection_words([faults[f]])[0]`` packed; the two
        views are bit-identical by contract.  Engines with a packed
        internal representation return it without a big-int round-trip;
        big-int engines pack once (see :class:`PackedQueryAdapter`).
        """

    def load_pairs(self, pairs: PatternPairSet) -> None:
        """Stage a two-pattern block for transition-fault queries."""

    def transition_detection_word(self, fault: "TransitionFault") -> int:
        """Bit ``p`` set iff loaded pair ``p`` detects ``fault``."""

    def transition_detection_words(self, faults: Sequence["TransitionFault"]
                                   ) -> List[int]:
        """Transition detection word per fault, in input order."""

    def transition_detection_matrix(self, faults: Sequence["TransitionFault"]
                                    ) -> DetectionMatrix:
        """Packed transition detection matrix, one row per fault."""


class PackedQueryAdapter:
    """Default packed-matrix queries over the big-int word contract.

    Mixing this into a backend whose native representation is big-int
    words satisfies the ``detection_matrix`` half of the protocol by
    packing the words exactly once; third-party backends without even
    the mixin are handled by :func:`backend_detection_matrix`, which
    falls back to the same single packing step.
    """

    def detection_matrix(self, faults: Sequence[Fault]) -> DetectionMatrix:
        """Pack ``detection_words`` once into a :class:`DetectionMatrix`."""
        return DetectionMatrix.from_bigints(
            self.detection_words(faults), self.num_patterns
        )


def backend_detection_matrix(engine, faults: Sequence[Fault]
                             ) -> DetectionMatrix:
    """``engine.detection_matrix`` with a pack-once fallback.

    Engines predating the packed contract (third-party registrations)
    keep working: their big-int words are packed exactly once here.
    """
    with span("fsim.detection_matrix",
              backend=getattr(engine, "name", type(engine).__name__),
              faults=len(faults)):
        native = getattr(engine, "detection_matrix", None)
        if native is not None:
            return native(faults)
        return DetectionMatrix.from_bigints(
            engine.detection_words(faults), engine.num_patterns
        )


def backend_transition_detection_matrix(engine, faults) -> DetectionMatrix:
    """``engine.transition_detection_matrix`` with a pack-once fallback."""
    with span("fsim.transition_detection_matrix",
              backend=getattr(engine, "name", type(engine).__name__),
              faults=len(faults)):
        native = getattr(engine, "transition_detection_matrix", None)
        if native is not None:
            return native(faults)
        return DetectionMatrix.from_bigints(
            engine.transition_detection_words(faults), engine.num_patterns
        )


BackendFactory = Callable[[CompiledCircuit], FaultSimBackend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory,
                     replace: bool = False) -> None:
    """Register a backend factory under ``name``.

    Third-party engines plug in here; ``replace=True`` allows overriding
    a built-in (used by tests to stub engines).
    """
    if not replace and name in _REGISTRY:
        raise SimulationError(f"fault-sim backend {name!r} already registered")
    _REGISTRY[name] = factory


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def default_backend_name() -> str:
    """The process-wide default: ``$REPRO_FSIM_BACKEND`` or ``auto``."""
    return os.environ.get(BACKEND_ENV_VAR, "").strip() or DEFAULT_BACKEND


def create_backend(circ: CompiledCircuit,
                   backend: Optional[str] = None) -> FaultSimBackend:
    """Instantiate a backend by name (default: :func:`default_backend_name`).

    Unknown names raise :class:`SimulationError` listing the registered
    backends; when the bad name came from ``$REPRO_FSIM_BACKEND`` rather
    than a ``backend=`` argument, the message says so — a misspelled
    environment variable should fail loudly at resolution time, not as a
    bare ``KeyError`` deep in a pipeline.
    """
    from_env = False
    name = backend
    if name is None:
        env = os.environ.get(BACKEND_ENV_VAR, "").strip()
        from_env = bool(env)
        name = env or DEFAULT_BACKEND
    if name.startswith("parallel:"):
        # Shard knobs travel through plain name channels as a spec
        # string: parallel[:SHARDS[:BASE]] (see repro.fsim.sharded).
        from repro.fsim.sharded import sharded_from_spec

        return sharded_from_spec(circ, name)
    factory = _REGISTRY.get(name)
    if factory is None:
        source = f" (from ${BACKEND_ENV_VAR})" if from_env else ""
        raise SimulationError(
            f"unknown fault-sim backend {name!r}{source}; "
            f"available: {available_backends()}"
        )
    return factory(circ)


def resolve_backend(circ: CompiledCircuit,
                    backend: Union[str, FaultSimBackend, None] = None
                    ) -> FaultSimBackend:
    """Turn a ``backend=`` argument into a bound engine instance.

    Accepts ``None`` (default backend), a registry name, or an already
    constructed backend instance (which must be bound to ``circ``).
    """
    if backend is None or isinstance(backend, str):
        return create_backend(circ, backend)
    if getattr(backend, "circ", None) is not circ:
        raise SimulationError(
            f"backend {getattr(backend, 'name', backend)!r} is bound to a "
            "different circuit"
        )
    return backend


def detection_words(circ: CompiledCircuit, faults: Sequence[Fault],
                    patterns: PatternSet,
                    backend: Union[str, FaultSimBackend, None] = None
                    ) -> List[int]:
    """One-shot convenience: load ``patterns``, query all ``faults``."""
    engine = resolve_backend(circ, backend)
    engine.load(patterns)
    return engine.detection_words(faults)


def detection_matrix(circ: CompiledCircuit, faults: Sequence[Fault],
                     patterns: PatternSet,
                     backend: Union[str, FaultSimBackend, None] = None
                     ) -> DetectionMatrix:
    """One-shot convenience: load ``patterns``, query the packed matrix."""
    engine = resolve_backend(circ, backend)
    engine.load(patterns)
    return backend_detection_matrix(engine, faults)


def transition_detection_words(circ: CompiledCircuit,
                               faults: Sequence["TransitionFault"],
                               pairs: PatternPairSet,
                               backend: Union[str, FaultSimBackend, None] = None
                               ) -> List[int]:
    """One-shot convenience: load ``pairs``, query all transition ``faults``."""
    engine = resolve_backend(circ, backend)
    engine.load_pairs(pairs)
    return engine.transition_detection_words(faults)


def transition_detection_matrix(circ: CompiledCircuit,
                                faults: Sequence["TransitionFault"],
                                pairs: PatternPairSet,
                                backend: Union[str, FaultSimBackend, None] = None
                                ) -> DetectionMatrix:
    """One-shot convenience: load ``pairs``, query the packed matrix."""
    engine = resolve_backend(circ, backend)
    engine.load_pairs(pairs)
    return backend_transition_detection_matrix(engine, faults)


class AutoFaultSim:
    """Threshold-based dispatcher over the bigint and numpy engines.

    The numpy engine wins when there is enough work to amortize array
    set-up — batch queries on big circuits over wide blocks; the bigint
    engine wins for single-fault queries and small problems thanks to its
    event-driven early exit.  Both engines are created lazily and share
    the loaded pattern block.
    """

    name = "auto"
    capabilities = BackendCapabilities(
        batched=True, incremental=True,
        description="dispatches to bigint/numpy by problem size",
    )

    #: Batch queries below any of these thresholds go to the bigint engine.
    MIN_FAULTS = 24
    MIN_GATES = 48
    MIN_PATTERNS = 16

    #: Batch queries at/above ALL of these go to the sharded ``parallel``
    #: backend — when worker processes can help at all (multiple usable
    #: cores, not already inside a worker; see
    #: :func:`repro.fsim.sharded.parallel_available`).  The bars are high
    #: on purpose: process fan-out only pays off where single-core numpy
    #: saturates.
    PARALLEL_MIN_FAULTS = 4096
    PARALLEL_MIN_GATES = 2048
    PARALLEL_MIN_PATTERNS = 256

    def __init__(self, circ: CompiledCircuit):
        self.circ = circ
        self._patterns: Optional[PatternSet] = None
        self._pairs: Optional[PatternPairSet] = None
        self._engines: Dict[str, FaultSimBackend] = {}
        self._loaded: Dict[str, bool] = {}

    def load(self, patterns: PatternSet) -> None:
        """Stage a pattern block; sub-engines simulate it on first use."""
        self._patterns = patterns
        self._pairs = None
        self._loaded = {}

    def load_pairs(self, pairs: PatternPairSet) -> None:
        """Stage a two-pattern block; sub-engines simulate it on first use."""
        self._pairs = pairs
        self._patterns = None
        self._loaded = {}

    @property
    def num_patterns(self) -> int:
        """Width of the staged block (single vectors or pairs)."""
        if self._pairs is not None:
            return self._pairs.num_patterns
        return self._patterns.num_patterns if self._patterns else 0

    def _engine(self, name: str) -> FaultSimBackend:
        if self._patterns is None and self._pairs is None:
            raise SimulationError("no pattern block loaded; call load() first")
        engine = self._engines.get(name)
        if engine is None:
            engine = create_backend(self.circ, name)
            self._engines[name] = engine
        if not self._loaded.get(name):
            if self._pairs is not None:
                engine.load_pairs(self._pairs)
            else:
                engine.load(self._patterns)
            self._loaded[name] = True
        return engine

    def _pick(self, num_faults: int) -> str:
        if (num_faults >= self.PARALLEL_MIN_FAULTS
                and self.circ.num_gates >= self.PARALLEL_MIN_GATES
                and self.num_patterns >= self.PARALLEL_MIN_PATTERNS):
            from repro.fsim.sharded import parallel_available

            if parallel_available():
                return "parallel"
        if (num_faults >= self.MIN_FAULTS
                and self.circ.num_gates >= self.MIN_GATES
                and self.num_patterns >= self.MIN_PATTERNS):
            return "numpy"
        return "bigint"

    def detection_word(self, fault: Fault) -> int:
        """Single-fault query — always the event-driven bigint engine."""
        return self._engine("bigint").detection_word(fault)

    def detection_words(self, faults: Sequence[Fault]) -> List[int]:
        """Batch query, dispatched by :meth:`_pick`."""
        return self._engine(self._pick(len(faults))).detection_words(faults)

    def detection_matrix(self, faults: Sequence[Fault]) -> DetectionMatrix:
        """Packed batch query, dispatched by :meth:`_pick`."""
        engine = self._engine(self._pick(len(faults)))
        return backend_detection_matrix(engine, faults)

    def transition_detection_word(self, fault: "TransitionFault") -> int:
        """Single transition-fault query — the event-driven bigint engine."""
        return self._engine("bigint").transition_detection_word(fault)

    def transition_detection_words(self, faults: Sequence["TransitionFault"]
                                   ) -> List[int]:
        """Batch transition query, dispatched by :meth:`_pick`."""
        engine = self._engine(self._pick(len(faults)))
        return engine.transition_detection_words(faults)

    def transition_detection_matrix(self, faults: Sequence["TransitionFault"]
                                    ) -> DetectionMatrix:
        """Packed batch transition query, dispatched by :meth:`_pick`."""
        engine = self._engine(self._pick(len(faults)))
        return backend_transition_detection_matrix(engine, faults)

    @property
    def good_values(self) -> List[int]:
        """Fault-free node words of the loaded block (bigint engine's)."""
        return self._engine("bigint").good_values


def _bigint_factory(circ: CompiledCircuit) -> FaultSimBackend:
    from repro.fsim.parallel import ParallelFaultSimulator

    return ParallelFaultSimulator(circ)


def _numpy_factory(circ: CompiledCircuit) -> FaultSimBackend:
    from repro.fsim.npfsim import NumpyFaultSim

    return NumpyFaultSim(circ)


def _parallel_factory(circ: CompiledCircuit) -> FaultSimBackend:
    from repro.fsim.sharded import ShardedFaultSim

    return ShardedFaultSim(circ)


register_backend("bigint", _bigint_factory)
register_backend("numpy", _numpy_factory)
register_backend("parallel", _parallel_factory)
register_backend("auto", AutoFaultSim)
