"""The ``repro`` command line: run flows, inspect stages, manage the cache.

Usage (installed console script, or ``python -m repro``)::

    repro run     --circuit irs208 --order 0dynm          # full pipeline
    repro run     --config flow.json --json               # declarative + JSON
    repro run     --circuit irs208 --trace                # + span tree & JSON
    repro order   --circuit irs208 --order dynm           # just the permutation
    repro testgen --circuit irs208 --write-tests t.txt    # tests + pattern file
    repro report  --circuit irs208 --order 0dynm          # coverage curve / AVE
    repro diagnose --circuit irs208 --devices 500         # batch diagnosis
    repro serve   --port 8321                             # flow-as-a-service
    repro cache stats                                     # artifact inventory
    repro cache prune --stage testgen                     # drop one stage
    repro cache prune --max-bytes 10000000                # LRU size bound

Every run subcommand accepts the same configuration surface: ``--config``
loads a :class:`repro.flow.config.FlowConfig` JSON document, and
individual flags override single knobs on top of it, so a checked-in
config plus one ``--order`` flag expresses a whole comparison.  With
``--json`` the output is the stable ``repro.flow/v1`` schema (see
:meth:`repro.flow.flow.FlowResult.summary`); without it, a human-readable
text summary.  ``--dump-config`` prints the fully resolved config and
exits — the reproducibility receipt to commit next to results.

Artifacts go to the content-addressed cache under ``results/cache`` by
default (``--cache-dir`` overrides, ``--no-cache`` disables), so a
second ``repro run`` of the same config answers from disk.

``--trace`` activates :mod:`repro.telemetry` span collection for the
run: the text output gains an indented per-stage/per-span wall-time
tree, and the full tree is persisted as
``results/trace_<fingerprint>.json`` (``--trace-dir`` overrides the
directory).  The stage durations in the tree are the *same
measurements* the run summary reports under ``timings`` — one span, two
views.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.flow.cache import ArtifactCache, default_cache_root
from repro.flow.config import (
    AdiSpec,
    CircuitSpec,
    FaultModelSpec,
    FlowConfig,
    OrderSpec,
    TestGenSpec,
    USpec,
)
from repro.flow.flow import Flow
from repro.telemetry import enabled, set_enabled, tracing


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared configuration surface of every run-style subcommand."""
    group = parser.add_argument_group("flow configuration")
    group.add_argument("--config", metavar="FILE",
                       help="FlowConfig JSON document to start from")
    group.add_argument("--circuit", metavar="NAME",
                       help="suite circuit name (kind=suite)")
    group.add_argument("--bench", metavar="PATH",
                       help=".bench netlist path (kind=bench)")
    group.add_argument("--generate", metavar="I,G,O",
                       help="synthesize a circuit with I inputs, G gates, "
                            "O outputs (kind=generator)")
    group.add_argument("--gen-seed", type=int, metavar="N",
                       help="generator seed (kind=generator, default 0)")
    group.add_argument("--name", metavar="NAME",
                       help="circuit name for --bench/--generate")
    group.add_argument("--fault-model", metavar="MODEL",
                       help="registered fault model (stuck_at, transition)")
    group.add_argument("--no-collapse", action="store_true",
                       help="target the full fault universe, not the "
                            "collapsed list")
    group.add_argument("--seed", type=int, metavar="N",
                       help="the one random seed of the run")
    group.add_argument("--order", metavar="NAME",
                       help="fault order fed to the ATPG (orig, decr, "
                            "0decr, incr0, dynm, 0dynm)")
    group.add_argument("--adi-mode", metavar="MODE",
                       help="ADI summary mode: minimum or average")
    group.add_argument("--max-vectors", type=int, metavar="N",
                       help="size of the random candidate pool for U")
    group.add_argument("--target-coverage", type=float, metavar="F",
                       help="U-selection truncation coverage in (0, 1]")
    group.add_argument("--prune-useless", action="store_true",
                       help="drop vectors of U that detect nothing new")
    group.add_argument("--backtrack-limit", type=int, metavar="N",
                       help="PODEM backtrack limit per fault")
    group.add_argument("--fill", metavar="POLICY",
                       help="X-fill policy: random, zero or one")
    group.add_argument("--backend", metavar="NAME",
                       help="fault-simulation backend (bigint, numpy, "
                            "parallel, auto)")
    group.add_argument("--fsim-shards", type=int, metavar="N",
                       help="worker count for --backend parallel "
                            "(default: $REPRO_FSIM_SHARDS or core count)")
    group.add_argument("--fsim-base", metavar="NAME",
                       help="base engine each parallel worker runs "
                            "(default: $REPRO_FSIM_SHARD_BASE or numpy)")
    group.add_argument("--cache-dir", metavar="DIR",
                       help=f"artifact cache root (default "
                            f"{default_cache_root()})")
    group.add_argument("--no-cache", action="store_true",
                       help="in-memory memoization only, no disk artifacts")
    group.add_argument("--dump-config", action="store_true",
                       help="print the resolved FlowConfig JSON and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    parser.add_argument("--out", metavar="FILE",
                        help="write the output document to FILE as well")
    parser.add_argument("--trace", action="store_true",
                        help="collect a telemetry span trace: print the "
                             "per-stage wall-time tree and write "
                             "trace_<fingerprint>.json")
    parser.add_argument("--trace-dir", metavar="DIR", default="results",
                        help="directory for the --trace JSON "
                             "(default: results)")


def build_config(args: argparse.Namespace) -> FlowConfig:
    """Resolve ``--config`` plus individual flag overrides to a FlowConfig."""
    config = (FlowConfig.from_json(args.config) if args.config
              else FlowConfig())

    circuit = config.circuit
    sources = [s for s in (args.circuit, args.bench, args.generate) if s]
    if len(sources) > 1:
        raise ReproError(
            "--circuit, --bench and --generate are mutually exclusive"
        )
    if args.circuit:
        circuit = CircuitSpec(kind="suite", name=args.circuit)
    elif args.bench:
        circuit = CircuitSpec(kind="bench", path=args.bench,
                              name=args.name or Path(args.bench).stem)
    elif args.generate:
        try:
            inputs, gates, outputs = (
                int(v) for v in args.generate.split(",")
            )
        except ValueError:
            raise ReproError(
                f"--generate expects I,G,O integers, got {args.generate!r}"
            )
        circuit = CircuitSpec(
            kind="generator", name=args.name or "generated",
            num_inputs=inputs, num_gates=gates, num_outputs=outputs,
            gen_seed=args.gen_seed if args.gen_seed is not None else 0,
        )
    elif args.gen_seed is not None:
        circuit = dataclasses.replace(circuit, gen_seed=args.gen_seed)

    fault_model = config.fault_model
    if args.fault_model:
        fault_model = dataclasses.replace(fault_model, name=args.fault_model)
    if args.no_collapse:
        fault_model = dataclasses.replace(fault_model, collapse=False)

    u = config.u
    if args.max_vectors is not None:
        u = dataclasses.replace(u, max_vectors=args.max_vectors)
    if args.target_coverage is not None:
        u = dataclasses.replace(u, target_coverage=args.target_coverage)
    if args.prune_useless:
        u = dataclasses.replace(u, prune_useless=True)

    adi = config.adi
    if args.adi_mode:
        adi = AdiSpec(mode=args.adi_mode)

    order = config.order
    if args.order:
        order = OrderSpec(name=args.order)

    testgen = config.testgen
    if args.backtrack_limit is not None:
        testgen = dataclasses.replace(
            testgen, backtrack_limit=args.backtrack_limit
        )
    if args.fill:
        testgen = dataclasses.replace(testgen, fill=args.fill)

    backend = config.backend
    if args.backend:
        backend = dataclasses.replace(backend, fsim=args.backend)
        if args.backend != "parallel":
            # Switching away from parallel drops any configured shard
            # knobs — they are meaningless on other backends.
            backend = dataclasses.replace(backend, shards=None,
                                          shard_base=None)
    if args.fsim_shards is not None:
        backend = dataclasses.replace(backend, shards=args.fsim_shards)
    if args.fsim_base:
        backend = dataclasses.replace(backend, shard_base=args.fsim_base)

    seed = args.seed if args.seed is not None else config.seed
    return FlowConfig(
        circuit=circuit, fault_model=fault_model, u=u, adi=adi,
        order=order, testgen=testgen, backend=backend, seed=seed,
        version=config.version,
    ).validate()


def _make_flow(args: argparse.Namespace, config: FlowConfig) -> Flow:
    cache = None if args.no_cache else (args.cache_dir or None)
    if cache is None and not args.no_cache:
        cache = default_cache_root()
    return Flow(config, cache=cache)


def _emit(text: str, args: argparse.Namespace) -> None:
    print(text)
    if args.out:
        Path(args.out).write_text(text + "\n")


def _traced_render(args: argparse.Namespace, flow: Flow,
                   config: FlowConfig, render):
    """Run ``render`` under a trace collector; persist and append the tree.

    ``--trace`` is an explicit request, so span recording is switched on
    for the duration even under ``REPRO_TELEMETRY=off`` (and restored
    after).  The tree lands in ``<trace-dir>/trace_<fingerprint>.json``;
    its stage durations are the very measurements the run summary
    reports under ``timings``.
    """
    was_enabled = enabled()
    if not was_enabled:
        set_enabled(True)
    try:
        with tracing() as collector:
            document, text = render(flow, config)
    finally:
        if not was_enabled:
            set_enabled(False)
    fingerprint = config.fingerprint()
    trace_document = {
        "schema": "repro.flow.trace/v1",
        "config_fingerprint": fingerprint,
        **collector.to_dict(),
    }
    path = Path(args.trace_dir) / f"trace_{fingerprint}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace_document, indent=1) + "\n")
    text = (f"{text}\n\ntrace ({collector.total_seconds() * 1000.0:.2f} ms "
            f"total)\n{collector.format_tree()}\ntrace written to {path}")
    return document, text


def _run_style_command(args: argparse.Namespace,
                       render) -> int:
    """Shared driver of run/order/testgen/report: config → flow → output."""
    config = build_config(args)
    if args.dump_config:
        _emit(config.to_json(), args)
        return 0
    flow = _make_flow(args, config)
    if args.trace:
        document, text = _traced_render(args, flow, config, render)
    else:
        document, text = render(flow, config)
    if getattr(args, "write_tests", None):
        _write_tests(flow, args.write_tests)
    _emit(json.dumps(document, indent=1) if args.json else text, args)
    return 0


# -- subcommand renderers -----------------------------------------------------

def _render_run(flow: Flow, config: FlowConfig):
    result = flow.run()
    summary = result.summary()
    lines = [
        f"circuit    {result.circuit.name}: {result.circuit.num_inputs} "
        f"inputs, {result.circuit.num_gates} gates, "
        f"{result.circuit.num_outputs} outputs",
        f"faults     {len(result.faults)} ({config.fault_model.name}"
        f"{', collapsed' if config.fault_model.collapse else ''})",
        f"U          {result.selection.num_vectors} vectors, coverage "
        f"{result.selection.coverage:.1%}",
        f"ADI        {summary['adi']['min']} .. {summary['adi']['max']}",
        f"order      {result.order_name}",
        f"tests      {result.tests.num_tests}, fault coverage "
        f"{result.tests.fault_coverage():.1%}",
        f"AVE        {result.report.ave:.3f}",
        "stages     " + ", ".join(
            f"{info.stage}={info.source}" for info in result.stages
        ),
    ]
    return summary, "\n".join(lines)


def _render_order(flow: Flow, config: FlowConfig):
    permutation = flow.permutation()
    adi = flow.adi()
    document = {
        "schema": "repro.flow.order/v1",
        "order": config.order.name,
        "num_faults": len(permutation),
        "permutation": permutation,
    }
    text = (f"order {config.order.name} over {len(permutation)} faults "
            f"(ADI {adi.adi_min_max()[0]} .. {adi.adi_min_max()[1]}):\n"
            + " ".join(str(i) for i in permutation))
    return document, text


def _render_testgen(flow: Flow, config: FlowConfig):
    result = flow.tests()
    document = {
        "schema": "repro.flow.testgen/v1",
        "order": config.order.name,
        "num_tests": result.num_tests,
        "fault_coverage": result.fault_coverage(),
        "num_detected": result.num_detected,
        "num_undetectable": result.num_undetectable,
        "num_aborted": result.num_aborted,
        "podem_calls": result.podem_calls,
        "backtracks": result.backtracks,
    }
    text = (f"{result.num_tests} tests under order {config.order.name}: "
            f"{result.num_detected} detected, "
            f"{result.num_undetectable} undetectable, "
            f"{result.num_aborted} aborted "
            f"({result.fault_coverage():.1%} coverage)")
    return document, text


def _render_report(flow: Flow, config: FlowConfig):
    report = flow.report()
    document = {
        "schema": "repro.flow.report/v1",
        "order": config.order.name,
        "num_tests": report.num_tests,
        "num_detected": report.num_detected,
        "total_faults": report.total_faults,
        "ave": report.ave,
        "curve": list(report.curve),
    }
    text = (f"coverage curve under order {config.order.name}: "
            f"{report.num_detected}/{report.total_faults} faults over "
            f"{report.num_tests} tests, AVE {report.ave:.3f}")
    return document, text


def _render_diagnose(flow: Flow, config: FlowConfig,
                     args: argparse.Namespace):
    """``repro diagnose``: batched diagnosis of a fail log (or synthetic).

    Builds the config's diagnosis context (dictionary + compressed form
    + chain ranker), reads ``--fail-log`` or synthesizes ``--devices``
    failing chips, and runs the batched pipeline once.
    """
    from repro.diagnosis import FailLog, random_fail_log
    from repro.flow.diagnose import (
        build_diagnosis_context,
        diagnosis_document,
    )

    context = build_diagnosis_context(flow)
    if args.fail_log:
        log = FailLog.from_jsonl(args.fail_log)
        if log.num_tests != context.num_tests:
            raise ReproError(
                f"fail log {args.fail_log} covers {log.num_tests} tests, "
                f"the config's dictionary {context.num_tests}"
            )
    else:
        log = random_fail_log(
            context.dictionary, args.devices,
            seed=args.log_seed,
            drop_probability=args.drop_probability,
            circ=flow.circuit() if args.chain else None,
        )
    if args.write_fail_log:
        log.write_jsonl(args.write_fail_log)
    document = diagnosis_document(
        context, log, max_candidates=args.top, chain=args.chain,
    )
    summary = document["summary"]
    lines = [
        f"devices    {summary['num_devices']} "
        f"({summary['num_unique_signatures']} unique signatures)",
        f"dictionary {summary['num_faults']} faults over "
        f"{summary['num_tests']} tests, {summary['num_classes']} "
        f"response classes (compression "
        f"{summary['compression_ratio']:.2f}x)",
        f"throughput {summary['devices_per_sec']:.0f} devices/sec "
        f"({summary['seconds'] * 1000.0:.1f} ms)",
    ]
    if args.chain:
        lines.append(f"chain      re-ranked {summary['chain_devices']} "
                     f"device(s) by backward-cone evidence")
    if "accuracy" in summary:
        lines.append("accuracy   " + "  ".join(
            f"{name} {rate:.2f}"
            for name, rate in summary["accuracy"].items()
        ))
    for record in document["devices"][:3]:
        if record["candidates"]:
            top = record["candidates"][0]
            lines.append(f"  {record['device']}: fault {top['fault']} "
                         f"at node {top['site']} "
                         f"(score {top['score']:.3f}, "
                         f"{len(record['candidates'])} candidate(s))")
        else:
            lines.append(f"  {record['device']}: no candidates")
    if len(document["devices"]) > 3:
        lines.append(f"  ... {len(document['devices']) - 3} more "
                     f"device(s) (use --json for all)")
    return document, "\n".join(lines)


def _write_tests(flow: Flow, destination: str) -> None:
    """Persist the generated test set via the pattern I/O module."""
    from repro.sim.pattern_io import write_pattern_pairs, write_patterns
    from repro.sim.patterns import PatternPairSet

    tests = flow.tests().tests
    if isinstance(tests, PatternPairSet):
        write_pattern_pairs(tests, Path(destination))
    else:
        write_patterns(tests, Path(destination))


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the flow service until SIGINT/SIGTERM, then drain and exit."""
    import signal
    import threading

    from repro.flow.server import FlowServer

    cache = None if args.no_cache else (args.cache_dir
                                        or default_cache_root())
    server = FlowServer(
        (args.host, args.port),
        cache=cache,
        max_body=args.max_body,
        allow_bench=args.allow_bench,
        quiet=not args.verbose,
        follower_timeout=args.follower_timeout,
        request_timeout=args.request_timeout,
        max_concurrent_runs=args.max_concurrent,
    )
    host, port = server.server_address[:2]
    print(f"repro flow server listening on http://{host}:{port} "
          f"(cache: {server.cache.root if server.cache else 'disabled'})",
          flush=True)

    def _shutdown(signum, frame) -> None:
        # Runs in the main thread mid-serve_forever; the drain must not
        # block the accept loop's own shutdown, so hand it to a thread.
        print("repro flow server draining "
              f"(signal {signum})...", flush=True)
        threading.Thread(
            target=server.shutdown_gracefully,
            kwargs={"timeout": args.drain_timeout},
            daemon=True,
        ).start()

    signal.signal(signal.SIGINT, _shutdown)
    signal.signal(signal.SIGTERM, _shutdown)
    try:
        server.serve_forever()
    finally:
        print("repro flow server stopped", flush=True)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ArtifactCache(args.cache_dir or None)
    if args.action == "prune":
        removed = cache.prune(stage=args.stage, max_bytes=args.max_bytes)
        document: Dict[str, Any] = {
            "schema": "repro.flow.cache/v1",
            "action": "prune",
            "root": str(cache.root),
            "removed": removed,
        }
        if args.max_bytes is not None:
            document["max_bytes"] = args.max_bytes
        text = f"pruned {removed} artifact(s) under {cache.root}"
    else:
        stats = cache.stats()
        document = {"schema": "repro.flow.cache/v1", "action": "stats",
                    **stats}
        lines = [f"cache root {stats['root']}: {stats['total_files']} "
                 f"artifact(s), {stats['total_bytes']} bytes"]
        for stage, entry in sorted(stats["stages"].items()):
            lines.append(f"  {stage:10s} {entry['files']:6d} file(s) "
                         f"{entry['bytes']:10d} bytes")
        text = "\n".join(lines)
    _emit(json.dumps(document, indent=1) if args.json else text, args)
    return 0


def make_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The ADI flow pipeline: declarative configs, "
                    "content-addressed caching, reproducible runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the whole pipeline for one config")
    _add_config_arguments(run)

    order = sub.add_parser("order",
                           help="compute a fault order's permutation")
    _add_config_arguments(order)

    testgen = sub.add_parser("testgen",
                             help="run ordered test generation")
    _add_config_arguments(testgen)
    testgen.add_argument("--write-tests", metavar="FILE",
                         help="write the generated test set as a pattern "
                              "file (bitstring / pair-bitstring format)")

    report = sub.add_parser("report",
                            help="coverage-curve report of a test set")
    _add_config_arguments(report)

    diagnose = sub.add_parser(
        "diagnose",
        help="batched fault diagnosis of a fail log against a config's "
             "dictionary")
    _add_config_arguments(diagnose)
    diagnose.add_argument("--fail-log", metavar="FILE",
                          help="JSONL fail log to diagnose "
                               "(repro.fail_log/v1)")
    diagnose.add_argument("--devices", type=int, default=100, metavar="N",
                          help="without --fail-log: synthesize N failing "
                               "devices (default 100)")
    diagnose.add_argument("--log-seed", type=int, default=0, metavar="N",
                          help="seed of the synthetic fail log (default 0)")
    diagnose.add_argument("--drop-probability", type=float, default=0.0,
                          metavar="F",
                          help="per-test escape probability of synthetic "
                               "devices (default 0)")
    diagnose.add_argument("--write-fail-log", metavar="FILE",
                          help="persist the (possibly synthetic) fail log "
                               "as JSONL")
    diagnose.add_argument("--top", type=int, default=10, metavar="K",
                          help="candidates reported per device "
                               "(default 10)")
    diagnose.add_argument("--chain", action="store_true",
                          help="re-rank tied candidates by backward-cone "
                               "(causal-chain) evidence from failing "
                               "outputs")

    serve = sub.add_parser(
        "serve", help="run the flow HTTP service (POST /run, GET /stats)")
    serve.add_argument("--host", default="127.0.0.1", metavar="HOST",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8321, metavar="N",
                       help="bind port (default 8321; 0 picks a free one)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help=f"artifact cache root (default "
                            f"{default_cache_root()})")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve without a disk artifact cache")
    serve.add_argument("--max-body", type=int, metavar="BYTES",
                       default=1 << 20,
                       help="reject request bodies above BYTES with 413 "
                            "(default 1 MiB)")
    serve.add_argument("--allow-bench", action="store_true",
                       help="accept configs with circuit.kind 'bench' "
                            "(reads local netlist paths)")
    serve.add_argument("--request-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="deadline for any /run request; expiry answers "
                            "504 with partial progress while the "
                            "computation finishes for a retry "
                            "(default: unbounded)")
    serve.add_argument("--follower-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="extra bound on coalesced followers waiting "
                            "for an in-flight identical run "
                            "(default: unbounded)")
    serve.add_argument("--max-concurrent", type=int, default=None,
                       metavar="N",
                       help="admit at most N concurrent /run+/diagnose "
                            "requests; excess sheds 503 with Retry-After "
                            "(default: unlimited)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="graceful-shutdown drain limit (default 30)")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per handled request")

    cache = sub.add_parser("cache", help="inspect or prune the artifact cache")
    cache.add_argument("action", nargs="?", default="stats",
                       choices=("stats", "prune"),
                       help="what to do (default: stats)")
    cache.add_argument("--stage", metavar="NAME",
                       help="restrict prune to one stage directory")
    cache.add_argument("--max-bytes", type=int, metavar="N",
                       help="prune to an LRU size bound instead of "
                            "deleting everything")
    cache.add_argument("--cache-dir", metavar="DIR",
                       help="artifact cache root")
    cache.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")
    cache.add_argument("--out", metavar="FILE",
                       help="write the output document to FILE as well")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI driver; returns a process exit code (0 ok, 2 config error)."""
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "serve":
            return _cmd_serve(args)
        renderers = {
            "run": _render_run,
            "order": _render_order,
            "testgen": _render_testgen,
            "report": _render_report,
            "diagnose": lambda flow, config:
                _render_diagnose(flow, config, args),
        }
        return _run_style_command(args, renderers[args.command])
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a consumer that closed early (e.g. `head`).
        return 0


if __name__ == "__main__":
    sys.exit(main())
