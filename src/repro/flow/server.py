"""Flow-as-a-service: a concurrent HTTP server for ADI ordering runs.

``repro serve`` puts a long-running service in front of the staged
:class:`~repro.flow.flow.Flow` pipeline.  Clients POST a
:class:`~repro.flow.config.FlowConfig` JSON document (the ``repro.flow/v1``
config schema) and get back the run summary; the server turns heavy
repeat traffic into cheap reads through three layers:

1. **Artifact cache** — every stage result is content-addressed on disk
   (:mod:`repro.flow.cache`), so a warm request re-runs nothing;
2. **Result memo** — a small in-process LRU of finished run summaries
   keyed by :meth:`~repro.flow.flow.Flow.run_key`, so the hottest
   configs skip even artifact decoding;
3. **Single-flight dedupe** — concurrent identical requests coalesce
   onto one computation (:mod:`repro.flow.dedupe`), keyed by the same
   sha-256 stage-key chain, so a thundering herd of N equal configs
   runs the pipeline exactly once.

Endpoints (all JSON):

* ``POST /run`` — run a config; the response carries ``source``:
  ``"computed"`` (at least one stage executed), ``"cache"`` (served
  without executing any stage), or ``"inflight"`` (coalesced onto a
  concurrent identical computation).
* ``POST /run?stream=1`` — same, but as an SSE-style event stream:
  one ``stage`` event per finished pipeline stage (fed from the Flow's
  stage observer), then one ``result`` event with the full document.
* ``POST /diagnose`` — batched fault diagnosis against a config's
  dictionary: the body carries a ``config`` (the same ``repro.flow/v1``
  document) plus a ``devices`` list of observed failing-test records;
  the response is a ``repro.diagnosis/v1`` document with per-device
  ranked candidate faults.  The dictionary (circuit x faults x generated
  tests) is memoized per run key, so steady-state traffic pays only the
  vectorized batch scoring; scored devices show up in ``GET /metrics``
  as ``repro_diagnosis_devices_total``.
* ``GET /stats`` — cache hit/miss/put counters, dedupe and request
  totals, memo occupancy, drain state (JSON; the counter keys are
  deprecated aliases of the registry series ``GET /metrics`` exposes —
  both read the same :class:`repro.telemetry.MetricsRegistry` series,
  so the two surfaces can never disagree).
* ``GET /metrics`` — the same numbers in Prometheus text exposition
  format: per-request latency histograms by route and result source
  (``repro_http_request_seconds``), served/error counters, an in-flight
  gauge, dedupe counters, cache hit/miss/put/latency series, flow stage
  timings and fault-sim spans.  Scrapes of ``/metrics`` itself are not
  recorded, so an idle server's output is scrape-stable.
* ``GET /healthz`` — ``{"status": "ok"}``, or ``"draining"``.

With ``--verbose`` the server emits one structured access-log line per
request (method, path, status, latency, result source, run key) through
:func:`repro.telemetry.log_event` — ``REPRO_LOG_FORMAT=json`` switches
it to one JSON object per line.  The stock
:meth:`~http.server.BaseHTTPRequestHandler.log_message` stderr writes
are routed through the same layer and silent by default (tests run
quiet).

Requests whose body exceeds ``max_body`` get 413; malformed JSON, a bad
``Content-Length`` or an invalid config gets 400 naming the problem; a
draining server rejects new runs with 503 (``Retry-After``) while
in-flight runs finish; with ``follower_timeout`` set, a coalesced
request that outwaits it gets 504 (``Retry-After``) instead of blocking
on the leader.  By default configs that read local files
(``circuit.kind == "bench"``) are refused — the service executes
network input — unless constructed with ``allow_bench=True``
(``repro serve --allow-bench``).

Resilience (PR 10): the leader's flow no longer runs in the handler
thread — it runs on a dedicated daemon thread that completes the
single-flight entry, and *every* handler (leader and follower alike)
just waits on the entry with a deadline.  ``request_timeout``
(``repro serve --request-timeout``) bounds that wait: an expired
request answers 504 with ``Retry-After`` and a ``partial`` section
listing the stages that did finish (streamed runs get the same payload
as a final ``error`` event); the computation itself keeps running and
lands in the memo for the retry.  ``max_concurrent_runs``
(``--max-concurrent``) sheds load with 503 + ``Retry-After`` at
admission, before the thread pool saturates.  Shed and timed-out
requests count into ``repro_resilience_shed_total`` (by reason) on
``GET /metrics``; the ``server.handler.slow`` chaos site injects
leader-side latency to exercise all of it.

The server is stdlib-only: :class:`http.server.ThreadingHTTPServer`
with daemon worker threads, one per connection.
"""

from __future__ import annotations

import collections
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlparse, parse_qs

import queue

from repro import telemetry
from repro.errors import ReproError
from repro.flow.cache import ArtifactCache
from repro.flow.config import FlowConfig
from repro.flow.dedupe import Computation, InflightTable
from repro.flow.flow import Flow
from repro.resilience import chaos as _chaos
from repro.resilience import context as _resilience
from repro.resilience.deadline import Deadline, remaining_timeout
from repro.telemetry import MetricsRegistry, log_event, render_prometheus

#: Response/stream schema version.
SERVER_SCHEMA = "repro.flow.server/v1"

#: Default request-body ceiling (a FlowConfig is a few hundred bytes).
DEFAULT_MAX_BODY = 1 << 20


class FlowServer(ThreadingHTTPServer):
    """The threaded flow service; see the module docstring for the API.

    ``cache`` is an :class:`~repro.flow.cache.ArtifactCache`, a root
    path, or ``None`` for memo-and-dedupe-only service.
    ``follower_timeout`` bounds how long a coalesced (non-streaming)
    request waits for the leader's result before answering 504
    (``None`` — the default — waits as long as the leader computes).
    ``request_timeout`` bounds *every* ``/run`` request, leader or
    follower, streamed or not: an expired one answers 504 with
    ``Retry-After`` and partial progress while the computation finishes
    in the background (its result lands in the memo for the retry).
    ``max_concurrent_runs`` caps concurrently admitted ``/run`` and
    ``/diagnose`` requests; excess load is shed with 503 +
    ``Retry-After`` at admission.
    ``flow_factory`` (signature ``(config, observer) -> Flow``) exists
    for tests to instrument flow construction — e.g. counting real
    executions under concurrent identical requests.
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int] = ("127.0.0.1", 0), *,
                 cache: Any = None,
                 max_body: int = DEFAULT_MAX_BODY,
                 allow_bench: bool = False,
                 memo_size: int = 128,
                 quiet: bool = True,
                 follower_timeout: Optional[float] = None,
                 request_timeout: Optional[float] = None,
                 max_concurrent_runs: Optional[int] = None,
                 diagnosis_memo_size: int = 8,
                 flow_factory=None):
        super().__init__(address, FlowRequestHandler)
        if cache is None or isinstance(cache, ArtifactCache):
            self.cache = cache
        else:
            self.cache = ArtifactCache(cache)
        self.max_body = max_body
        self.allow_bench = allow_bench
        self.follower_timeout = follower_timeout
        self.request_timeout = request_timeout
        if max_concurrent_runs is not None and max_concurrent_runs < 1:
            raise ValueError(
                f"max_concurrent_runs must be >= 1 or None, "
                f"got {max_concurrent_runs!r}")
        self.max_concurrent_runs = max_concurrent_runs
        self.quiet = quiet
        self.flow_factory = flow_factory or self._default_flow_factory
        #: Per-server telemetry registry: HTTP and dedupe series live
        #: here; flow/fsim spans accumulate in the process default
        #: registry; cache series in the cache's own.  ``GET /metrics``
        #: renders all three.
        self.registry = MetricsRegistry()
        self._requests_counter = self.registry.counter(
            "repro_http_requests_total", "HTTP requests by route.")
        self._served_counter = self.registry.counter(
            "repro_http_run_served_total",
            "POST /run responses by result source.")
        self._errors_counter = self.registry.counter(
            "repro_http_errors_total", "HTTP error responses by status.")
        self._latency = self.registry.histogram(
            "repro_http_request_seconds",
            "Request latency by route and result source.")
        self._inflight_gauge = self.registry.gauge(
            "repro_http_inflight_requests",
            "Requests currently being handled.").labels()
        self.inflight = InflightTable(registry=self.registry)
        self._memo: "collections.OrderedDict[str, Dict[str, Any]]" = \
            collections.OrderedDict()
        self._memo_size = memo_size
        #: Diagnosis contexts (dictionary + compressed + chain ranker)
        #: per run key.  Few and large, so a small dedicated LRU.
        self._diagnosis_memo: "collections.OrderedDict[str, Any]" = \
            collections.OrderedDict()
        self._diagnosis_memo_size = diagnosis_memo_size
        self._state_lock = threading.Lock()
        self._draining = False
        #: All live run slots: handler-admitted requests PLUS background
        #: leader-compute threads (drain waits for both).
        self._active_runs = 0
        #: Handler-admitted requests only — the series the concurrency
        #: limiter caps (a handed-off computation shouldn't double-count
        #: its request against the admission limit).
        self._handler_runs = 0
        self._idle = threading.Condition(self._state_lock)

    def _default_flow_factory(self, config: FlowConfig, observer) -> Flow:
        return Flow(config, cache=self.cache, observer=observer)

    # -- counters / memo -----------------------------------------------------

    def count(self, name: str) -> None:
        """Bump one legacy-named counter (now a registry series).

        ``requests_total`` → ``repro_http_requests_total{route="/run"}``,
        ``served_<source>`` → ``repro_http_run_served_total{source=...}``;
        the old dict is gone, the names survive as ``/stats`` aliases.
        """
        if name == "requests_total":
            self._requests_counter.labels(route="/run").inc()
        elif name.startswith("served_"):
            self._served_counter.labels(source=name[len("served_"):]).inc()
        else:
            raise ValueError(f"unknown request counter {name!r}")

    def count_error(self, status: int) -> None:
        """Record one error response (labelled by HTTP status)."""
        self._errors_counter.labels(status=str(status)).inc()

    def count_route(self, route: str) -> None:
        """Record one non-/run request (GET endpoints, 404s)."""
        self._requests_counter.labels(route=route).inc()

    def observe_request(self, route: str, source: str,
                        seconds: float) -> None:
        """Record one finished request in the latency histogram."""
        self._latency.labels(route=route, source=source).observe(seconds)

    @property
    def request_counters(self) -> Dict[str, int]:
        """The legacy ``/stats`` request counters, read from the registry.

        Deprecated aliases — one source of truth with ``GET /metrics``.
        """
        served = {
            source: int(self._served_counter.labels(source=source).value)
            for source in ("computed", "cache", "inflight")
        }
        errors = sum(
            int(series.value)
            for series in self._errors_counter.series()
        )
        return {
            "requests_total": int(
                self._requests_counter.labels(route="/run").value),
            "served_computed": served["computed"],
            "served_cache": served["cache"],
            "served_inflight": served["inflight"],
            "errors": errors,
        }

    def memo_get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._state_lock:
            document = self._memo.get(key)
            if document is not None:
                self._memo.move_to_end(key)
            return document

    def memo_put(self, key: str, document: Dict[str, Any]) -> None:
        if self._memo_size <= 0:
            return
        with self._state_lock:
            self._memo[key] = document
            self._memo.move_to_end(key)
            while len(self._memo) > self._memo_size:
                self._memo.popitem(last=False)

    def diagnosis_context_get(self, key: str):
        with self._state_lock:
            context = self._diagnosis_memo.get(key)
            if context is not None:
                self._diagnosis_memo.move_to_end(key)
            return context

    def diagnosis_context_put(self, key: str, context: Any) -> None:
        if self._diagnosis_memo_size <= 0:
            return
        with self._state_lock:
            self._diagnosis_memo[key] = context
            self._diagnosis_memo.move_to_end(key)
            while len(self._diagnosis_memo) > self._diagnosis_memo_size:
                self._diagnosis_memo.popitem(last=False)

    # -- drain / shutdown ----------------------------------------------------

    @property
    def draining(self) -> bool:
        with self._state_lock:
            return self._draining

    def begin_drain(self) -> None:
        """Stop admitting new runs (they get 503); in-flight runs finish."""
        with self._state_lock:
            self._draining = True

    def enter_run(self) -> Optional[str]:
        """Admission control: registers a run, or names the refusal.

        Returns ``None`` when admitted, else the shed reason —
        ``"draining"`` or ``"capacity"`` (the ``max_concurrent_runs``
        limiter refusing before the thread pool saturates).
        """
        with self._state_lock:
            if self._draining:
                return "draining"
            if (self.max_concurrent_runs is not None
                    and self._handler_runs >= self.max_concurrent_runs):
                return "capacity"
            self._handler_runs += 1
            self._active_runs += 1
            return None

    def exit_run(self) -> None:
        with self._idle:
            self._handler_runs -= 1
            self._active_runs -= 1
            if self._active_runs == 0:
                self._idle.notify_all()

    def adopt_run(self) -> None:
        """Register a background leader-compute thread as a live run.

        Unchecked (the request carrying it was already admitted), and
        not counted against the concurrency limit — but :meth:`drain`
        waits for it, so graceful shutdown never abandons a computation
        whose handler already timed out and answered 504.
        """
        with self._state_lock:
            self._active_runs += 1

    def release_run(self) -> None:
        """Retire a slot taken by :meth:`adopt_run`."""
        with self._idle:
            self._active_runs -= 1
            if self._active_runs == 0:
                self._idle.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Begin drain and wait for in-flight runs; ``False`` on timeout."""
        self.begin_drain()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._active_runs > 0:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def shutdown_gracefully(self, timeout: Optional[float] = None) -> bool:
        """Drain, then stop the accept loop and close the socket."""
        drained = self.drain(timeout)
        self.shutdown()
        self.server_close()
        return drained

    def stats_document(self) -> Dict[str, Any]:
        """The ``/stats`` payload.

        The ``requests``/``dedupe``/``cache`` counter keys are
        deprecated aliases of the registry series served by
        ``GET /metrics`` — values are read from the same series.
        """
        with self._state_lock:
            memo = {"entries": len(self._memo), "size": self._memo_size}
            draining = self._draining
            active = self._active_runs
        document: Dict[str, Any] = {
            "schema": SERVER_SCHEMA,
            "requests": self.request_counters,
            "dedupe": self.inflight.stats(),
            "memo": memo,
            "active_runs": active,
            "draining": draining,
            "limits": {
                "request_timeout": self.request_timeout,
                "follower_timeout": self.follower_timeout,
                "max_concurrent_runs": self.max_concurrent_runs,
            },
            "metrics_endpoint": "/metrics",
        }
        if self.cache is not None:
            cache_stats = self.cache.stats()
            document["cache"] = {
                **self.cache.counters(),
                "files": cache_stats["total_files"],
                "bytes": cache_stats["total_bytes"],
                "root": cache_stats["root"],
                "degraded": cache_stats["degraded"],
            }
        return document

    def metrics_text(self) -> str:
        """The ``/metrics`` payload: Prometheus text exposition.

        Renders the server's own registry (HTTP + dedupe series), the
        cache's (hit/miss/put/latency/disk bytes — refreshed first, so
        the byte gauge is current at scrape time) and the process
        default registry (flow stage and fault-sim spans, including
        per-shard series merged back from ``parallel`` workers).
        """
        registries = [self.registry]
        if self.cache is not None:
            self.cache.stats()  # refresh repro_cache_disk_bytes
            registries.append(self.cache.registry)
        registries.append(telemetry.get_registry())
        return render_prometheus(*registries)


class _HTTPError(Exception):
    """A client-visible error with an HTTP status."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


class FlowRequestHandler(BaseHTTPRequestHandler):
    """One request: parse → admit → dedupe → run/serve → respond."""

    protocol_version = "HTTP/1.1"
    server: FlowServer  # narrowed for type checkers

    # -- plumbing ------------------------------------------------------------

    def log_request(self, code: Any = "-", size: Any = "-") -> None:
        # The stock per-response stderr line is superseded by the
        # structured access log below; suppressing it here keeps tests
        # (and piped deployments) free of unformatted noise.
        pass

    def log_message(self, format: str, *args: Any) -> None:
        # http.server's remaining internal messages (log_error on bad
        # requests etc.) go through the telemetry logging layer — one
        # structured line, JSON-able, silent on quiet servers.
        if not self.server.quiet:
            log_event("http_server", level="warning",
                      message=format % args,
                      client=self.address_string())

    def _access_log(self, method: str, route: str, status: int,
                    source: str, seconds: float) -> None:
        if self.server.quiet:
            return
        log_event("http_access", method=method, path=self.path,
                  route=route, status=status, source=source or None,
                  seconds=round(seconds, 6),
                  key=getattr(self, "_run_key", None),
                  client=self.address_string())

    def send_response(self, code: int, message: Optional[str] = None) -> None:
        self._status = code
        super().send_response(code, message)

    def _send_json(self, status: int, document: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str,
                         headers: Optional[Dict[str, str]] = None,
                         extra: Optional[Dict[str, Any]] = None) -> None:
        self.server.count_error(status)
        self._source = "error"
        document: Dict[str, Any] = {
            "schema": SERVER_SCHEMA, "error": message, "status": status,
        }
        if extra:
            document.update(extra)
        self._send_json(status, document, headers)

    def _shed_message(self, reason: str) -> str:
        if reason == "draining":
            return "server is draining"
        return (f"server at capacity "
                f"({self.server.max_concurrent_runs} concurrent runs)")

    def _shed(self, reason: str) -> None:
        """Refuse an unadmitted request: 503 + Retry-After, counted."""
        _resilience.record("shed", "flow.server", reason=reason,
                           key=getattr(self, "_run_key", None))
        self._send_error_json(503, self._shed_message(reason),
                              {"Retry-After": "1"})

    # -- request body --------------------------------------------------------

    def _read_json_body(self) -> Any:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise _HTTPError(411, "Content-Length required")
        try:
            length = int(length_header)
        except ValueError:
            raise _HTTPError(400, "malformed Content-Length")
        if length < 0:
            # A negative length would make rfile.read() consume until
            # EOF — an unbounded body sneaking past the 413 ceiling.
            raise _HTTPError(400, "malformed Content-Length")
        if length > self.server.max_body:
            # Close rather than read an arbitrarily large body.
            self.close_connection = True
            raise _HTTPError(
                413, f"request body {length} bytes exceeds limit "
                     f"{self.server.max_body}")
        body = self.rfile.read(length)
        try:
            return json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HTTPError(400, f"request body is not valid JSON: {exc}")

    def _parse_config(self, data: Any) -> FlowConfig:
        try:
            config = FlowConfig.from_dict(data).validate()
        except ReproError as exc:
            raise _HTTPError(400, str(exc))
        if config.requires_local_files() and not self.server.allow_bench:
            raise _HTTPError(
                400, "circuit.kind 'bench' reads local files and is "
                     "disabled on this server (start with --allow-bench)")
        return config

    def _read_config(self) -> FlowConfig:
        return self._parse_config(self._read_json_body())

    # -- handlers ------------------------------------------------------------

    def do_GET(self) -> None:
        path = urlparse(self.path).path
        started = time.perf_counter()
        self._source = ""
        self._status = 0
        if path == "/metrics":
            # Scrapes are served but deliberately not recorded — no
            # counter, histogram or in-flight gauge movement — so two
            # back-to-back scrapes of an idle server are byte-identical
            # (scrape-stability is tested).
            try:
                body = self.server.metrics_text().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type",
                                 "text/plain; version=0.0.4; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                self.close_connection = True
            finally:
                self._access_log("GET", path, self._status, self._source,
                                 time.perf_counter() - started)
            return
        route = path if path in ("/stats", "/healthz") else "other"
        self.server._inflight_gauge.inc()
        try:
            if path == "/stats":
                self._send_json(200, self.server.stats_document())
            elif path == "/healthz":
                status = "draining" if self.server.draining else "ok"
                self._send_json(200, {"schema": SERVER_SCHEMA,
                                      "status": status})
            else:
                self._send_error_json(404, f"unknown path {path!r}")
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        finally:
            self.server._inflight_gauge.dec()
            seconds = time.perf_counter() - started
            self.server.count_route(route)
            self.server.observe_request(route, self._source, seconds)
            self._access_log("GET", route, self._status, self._source,
                             seconds)

    def do_POST(self) -> None:
        parsed = urlparse(self.path)
        started = time.perf_counter()
        self._source = ""
        self._status = 0
        if parsed.path == "/diagnose":
            self._do_diagnose(started)
            return
        if parsed.path != "/run":
            self.server.count_route("other")
            self._send_error_json(404, f"unknown path {parsed.path!r}")
            self._access_log("POST", "other", self._status, self._source,
                             time.perf_counter() - started)
            return
        stream = parse_qs(parsed.query).get("stream", ["0"])[0] not in \
            ("0", "", "false")
        self.server.count("requests_total")
        self.server._inflight_gauge.inc()
        try:
            try:
                config = self._read_config()
            except _HTTPError as exc:
                self._send_error_json(exc.status, str(exc), exc.headers)
                return
            reason = self.server.enter_run()
            if reason is not None:
                self._shed(reason)
                return
            try:
                self._serve_run(config, stream)
            finally:
                self.server.exit_run()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        finally:
            self.server._inflight_gauge.dec()
            seconds = time.perf_counter() - started
            self.server.observe_request("/run", self._source, seconds)
            self._access_log("POST", "/run", self._status, self._source,
                             seconds)

    # -- the diagnose path ---------------------------------------------------

    def _do_diagnose(self, started: float) -> None:
        """``POST /diagnose``: batched diagnosis against one config.

        Body: ``{"config": <repro.flow/v1>, "devices": [{"device": id,
        "failing_tests": [...], "failing_outputs": [...]}, ...],
        "max_candidates": K, "chain": bool}``.  The diagnosis context
        (dictionary + compressed form + chain ranker) is memoized per
        run key, so only the first request for a config pays the
        dictionary simulation; every request's devices run through the
        batched pipeline and land in ``repro_diagnosis_devices_total``.
        """
        self.server.count_route("/diagnose")
        self.server._inflight_gauge.inc()
        try:
            try:
                document = self._serve_diagnose()
            except _HTTPError as exc:
                self._send_error_json(exc.status, str(exc), exc.headers)
                return
            self._send_json(200, document)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        finally:
            self.server._inflight_gauge.dec()
            seconds = time.perf_counter() - started
            self.server.observe_request("/diagnose", self._source, seconds)
            self._access_log("POST", "/diagnose", self._status,
                             self._source, seconds)

    def _serve_diagnose(self) -> Dict[str, Any]:
        from repro.errors import DiagnosisInputError
        from repro.flow.diagnose import (
            build_diagnosis_context,
            diagnosis_document,
            parse_fail_entries,
        )

        data = self._read_json_body()
        if not isinstance(data, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        if "config" not in data:
            raise _HTTPError(400, "request body is missing 'config'")
        if "devices" not in data:
            raise _HTTPError(400, "request body is missing 'devices'")
        config = self._parse_config(data["config"])
        max_candidates = data.get("max_candidates", 10)
        if not isinstance(max_candidates, int) \
                or isinstance(max_candidates, bool) or max_candidates < 0:
            raise _HTTPError(
                400, "max_candidates must be a non-negative integer")
        chain = data.get("chain", False)
        if not isinstance(chain, bool):
            raise _HTTPError(400, "chain must be a boolean")

        try:
            flow = self.server.flow_factory(config, None)
            key = flow.run_key()
        except ReproError as exc:
            raise _HTTPError(400, f"invalid flow config: {exc}")
        self._run_key = key

        reason = self.server.enter_run()
        if reason is not None:
            _resilience.record("shed", "flow.server", reason=reason, key=key)
            raise _HTTPError(503, self._shed_message(reason),
                             {"Retry-After": "1"})
        try:
            context = self.server.diagnosis_context_get(key)
            source = "cache"
            if context is None:
                source = "computed"
                try:
                    context = build_diagnosis_context(flow)
                except ReproError as exc:
                    raise _HTTPError(400, f"flow execution failed: {exc}")
                self.server.diagnosis_context_put(key, context)
            try:
                log = parse_fail_entries(data["devices"],
                                         context.num_tests)
                document = diagnosis_document(
                    context, log, max_candidates=max_candidates,
                    chain=chain, source=source,
                )
            except DiagnosisInputError as exc:
                raise _HTTPError(400, str(exc))
            self._source = source
            return document
        finally:
            self.server.exit_run()

    # -- the run path --------------------------------------------------------

    def _serve_run(self, config: FlowConfig, stream: bool) -> None:
        try:
            probe = self.server.flow_factory(config, None)
            key = probe.run_key()
        except ReproError as exc:
            self._send_error_json(400, f"invalid flow config: {exc}")
            return
        self._run_key = key

        memo = self.server.memo_get(key)
        if memo is not None:
            # source/fingerprint describe THIS request, not the one that
            # populated the memo (e.g. a different backend spec).
            document = dict(memo, source="cache",
                            config_fingerprint=config.fingerprint())
            self.server.count("served_cache")
            self._source = "cache"
            if stream:
                self._stream_events(
                    [("stage", info) for info in document["result"]["stages"]],
                    document)
            else:
                self._send_json(200, document)
            return

        entry, leads = self.server.inflight.lease(key)
        deadline = Deadline.after(self.server.request_timeout)
        subscription = entry.subscribe() if stream else None
        if leads:
            # The leader's flow runs on a dedicated daemon thread that
            # completes the single-flight entry; this handler — exactly
            # like a follower — only *waits* on the entry, bounded by
            # the request deadline.  A slow computation can therefore
            # never pin a handler past its budget, and a client
            # disconnect can never poison the shared entry.
            self.server.adopt_run()
            worker = threading.Thread(
                target=self._leader_compute, args=(config, entry),
                name=f"flow-leader-{key[:8]}", daemon=True)
            try:
                worker.start()
            except BaseException as exc:
                # Could not even start the thread (resource exhaustion):
                # retire the slot and the entry so the key is not wedged.
                self.server.release_run()
                self.server.inflight.complete(entry, exception=exc)
                raise
            self._await_entry(config, entry, "leader", stream,
                              subscription, deadline)
        else:
            self._await_entry(config, entry, "follower", stream,
                              subscription, deadline)

    def _leader_compute(self, config: FlowConfig,
                        entry: Computation) -> None:
        """Run the flow off-handler and complete the entry exactly once.

        Every exit path completes the entry (result or exception) and
        releases the adopted run slot — so followers always wake, later
        identical requests never block on a dead entry, and
        :meth:`FlowServer.drain` waits for computations whose handlers
        already answered 504 and went away.
        """
        try:
            try:
                if _chaos.fire("server.handler.slow", key=entry.key):
                    time.sleep(float(_chaos.param(
                        "server.handler.slow", "seconds", 0.25)))

                def observer(info) -> None:
                    entry.publish(("stage", info.to_dict()))

                flow = self.server.flow_factory(config, observer)
                result = flow.run()
                sources = {info.source for info in result.stages
                           if info.stage != "circuit"}
                source = ("cache" if sources <= {"cache", "memory"}
                          else "computed")
                document = {
                    "schema": SERVER_SCHEMA,
                    "key": entry.key,
                    "source": source,
                    "config_fingerprint": config.fingerprint(),
                    "result": result.summary(),
                }
            except BaseException as exc:
                self.server.inflight.complete(entry, exception=exc)
                return
            self.server.memo_put(entry.key, document)
            self.server.inflight.complete(entry, document)
        finally:
            self.server.release_run()

    def _await_entry(self, config: FlowConfig, entry: Computation,
                     role: str, stream: bool, subscription,
                     deadline: Optional[Deadline]) -> None:
        """Wait for the entry under the request budget and respond.

        Leaders and followers differ only in the response labelling
        (followers re-stamp ``source="inflight"`` and their own config
        fingerprint) and in the extra ``follower_timeout`` bound on
        non-streaming followers.
        """
        if stream:
            self._relay_stream(config, entry, role, subscription, deadline)
            return
        timeout = remaining_timeout(
            deadline,
            self.server.follower_timeout if role == "follower" else None)
        if not entry.wait(timeout):
            self._timeout_response(entry, deadline, streamed=False)
            return
        try:
            document = entry.outcome()
        except BaseException as exc:
            self._send_error_json(500, f"flow execution failed: {exc}")
            return
        if role == "leader":
            source = document["source"]
        else:
            document = dict(document, source="inflight",
                            config_fingerprint=config.fingerprint())
            source = "inflight"
        self.server.count(f"served_{source}")
        self._source = source
        self._send_json(200, document)

    def _relay_stream(self, config: FlowConfig, entry: Computation,
                      role: str, subscription,
                      deadline: Optional[Deadline]) -> None:
        """Stream the entry's events under the request budget.

        The subscription replays events already published, then follows
        live ones; the whole relay shares one deadline, and expiry turns
        into a final ``error`` event carrying the 504 + partial
        progress (HTTP headers are long gone by then).
        """
        self._start_stream()
        while True:
            try:
                event = entry.next_event(
                    subscription, remaining_timeout(deadline))
            except queue.Empty:
                self._timeout_response(entry, deadline, streamed=True)
                return
            if event is None:
                break
            self._write_event(*event)
        try:
            document = entry.outcome()
        except BaseException as exc:
            self.server.count_error(500)
            self._source = "error"
            self._write_event("error", {
                "schema": SERVER_SCHEMA,
                "error": f"flow execution failed: {exc}", "status": 500,
            })
            return
        if role == "leader":
            source = document["source"]
        else:
            document = dict(document, source="inflight",
                            config_fingerprint=config.fingerprint())
            source = "inflight"
        self.server.count(f"served_{source}")
        self._source = source
        self._write_event("result", document)

    def _timeout_response(self, entry: Computation,
                          deadline: Optional[Deadline],
                          streamed: bool) -> None:
        """Answer 504 with partial progress; the computation lives on."""
        if deadline is not None and deadline.expired:
            reason = "deadline"
            message = (f"request deadline of "
                       f"{self.server.request_timeout:g}s exceeded; the "
                       "computation continues and will serve a retry")
        else:
            reason = "follower_timeout"
            message = "timed out waiting for the in-flight computation"
        _resilience.record("timeout", "flow.server", reason=reason,
                           key=entry.key)
        stages = [payload for kind, payload in entry.progress()
                  if kind == "stage"]
        partial = {
            "stages_completed": len(stages),
            "stages": [payload.get("stage") for payload in stages],
        }
        if streamed:
            self.server.count_error(504)
            self._source = "error"
            self._write_event("error", {
                "schema": SERVER_SCHEMA, "error": message, "status": 504,
                "retry_after": 1, "partial": partial,
            })
        else:
            self._send_error_json(504, message, {"Retry-After": "1"},
                                  extra={"partial": partial})

    # -- SSE-style streaming -------------------------------------------------

    def _start_stream(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        # Stream length is unknown; close delimits the body (HTTP/1.1
        # without Content-Length), so tell the client not to reuse it.
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()

    def _write_event(self, kind: str, payload: Dict[str, Any]) -> None:
        try:
            chunk = f"event: {kind}\ndata: {json.dumps(payload)}\n\n"
            self.wfile.write(chunk.encode("utf-8"))
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            # Consumer went away mid-stream; the computation (shared
            # with other requests) must keep going.
            pass

    def _stream_events(self, events, document: Dict[str, Any]) -> None:
        self._start_stream()
        for kind, payload in events:
            self._write_event(kind, payload)
        self._write_event("result", document)


def serve_forever(server: FlowServer) -> None:
    """Run the accept loop until :meth:`FlowServer.shutdown` (thin alias
    kept for symmetry with :func:`start_in_thread`)."""
    server.serve_forever()


def start_in_thread(server: FlowServer) -> threading.Thread:
    """Run the accept loop on a daemon thread (tests, benchmarks)."""
    thread = threading.Thread(target=server.serve_forever,
                              name="flow-server", daemon=True)
    thread.start()
    return thread
