"""Declarative flow configuration: one frozen dataclass tree per run.

The paper's pipeline — fault universe → vector set ``U`` → ADI → order →
ordered test generation → coverage curve — used to be wired by threading
loose kwargs (``backend=``, ``seed=``, ``AdiMode``, ``pairs=True``,
``TestGenConfig``) through half a dozen modules.  :class:`FlowConfig`
replaces that with a single JSON-(de)serializable value: every knob of
every stage lives in one named spec, every spec is frozen (hashable,
safe to share), and the whole tree round-trips through JSON — which is
what makes the content-addressed artifact cache
(:mod:`repro.flow.cache`) and the ``repro`` CLI possible.

Layout of the tree (one spec per pipeline stage)::

    FlowConfig
    ├── circuit:     CircuitSpec      which circuit, and how to obtain it
    ├── fault_model: FaultModelSpec   registry name + collapsing switch
    ├── u:           USpec            the U-selection procedure knobs
    ├── adi:         AdiSpec          how ADI summarizes ndet over D(f)
    ├── order:       OrderSpec        the fault order fed to the ATPG
    ├── testgen:     TestGenSpec      deterministic test-generation knobs
    ├── backend:     BackendSpec      fault-simulation engine selection
    └── seed:        int              the ONE random seed of the run

``seed`` is deliberately a single scalar: every stochastic stage derives
its sub-stream from it via :mod:`repro.utils.rng`, so two runs with equal
configs are bit-identical and a config fully names its outputs.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import ExperimentError

#: Bump when the meaning of any config field changes incompatibly; part
#: of every cache key, so old artifacts never masquerade as new ones.
CONFIG_VERSION = 1

#: X-fill policies understood by :mod:`repro.atpg.random_fill`.
_FILL_POLICIES = ("random", "zero", "one")

#: How :class:`repro.adi.index.AdiMode` spellings appear in configs.
_ADI_MODES = ("minimum", "average")

#: Circuit acquisition methods.
_CIRCUIT_KINDS = ("suite", "bench", "generator")


def _check(condition: bool, message: str) -> None:
    """Raise :class:`ExperimentError` with ``message`` unless ``condition``."""
    if not condition:
        raise ExperimentError(f"invalid flow config: {message}")


@dataclass(frozen=True)
class CircuitSpec:
    """Which circuit to run on, and how to obtain it.

    ``kind`` selects the acquisition method:

    * ``"suite"`` — ``name`` is a benchmark-suite entry
      (:mod:`repro.experiments.suite`), built through the suite's own
      on-disk netlist cache;
    * ``"bench"`` — ``path`` is an ISCAS-89 ``.bench`` netlist to parse;
    * ``"generator"`` — a synthetic circuit from
      :mod:`repro.circuit.generator` with ``num_inputs`` /
      ``num_gates`` / ``num_outputs`` / ``gen_seed`` / ``hardness`` /
      ``locality`` (no redundancy removal; faults the generator leaves
      undetectable simply stay in the target list).
    """

    kind: str = "suite"
    name: str = "irs208"
    path: Optional[str] = None
    num_inputs: Optional[int] = None
    num_gates: Optional[int] = None
    num_outputs: Optional[int] = None
    gen_seed: int = 0
    hardness: float = 0.04
    locality: float = 0.72

    def validate(self) -> None:
        """Check internal consistency; raise :class:`ExperimentError`."""
        _check(self.kind in _CIRCUIT_KINDS,
               f"circuit.kind {self.kind!r} not in {_CIRCUIT_KINDS}")
        if self.kind == "bench":
            _check(bool(self.path), "circuit.kind 'bench' needs circuit.path")
        if self.kind == "generator":
            for attr in ("num_inputs", "num_gates", "num_outputs"):
                _check(getattr(self, attr) is not None,
                       f"circuit.kind 'generator' needs circuit.{attr}")
        _check(bool(self.name), "circuit.name must be non-empty")


@dataclass(frozen=True)
class FaultModelSpec:
    """Which registered fault model to target.

    ``name`` resolves through :mod:`repro.faults.registry`; ``collapse``
    selects the structurally collapsed target list (the default, and
    what the paper evaluates) versus the full universe.
    """

    name: str = "stuck_at"
    collapse: bool = True

    def validate(self) -> None:
        """Check the model is registered; raise :class:`ExperimentError`."""
        from repro.faults.registry import available_fault_models

        _check(self.name in available_fault_models(),
               f"fault_model.name {self.name!r} not registered; "
               f"available: {available_fault_models()}")


@dataclass(frozen=True)
class USpec:
    """Knobs of the ``U``-selection procedure (paper Section 4)."""

    max_vectors: int = 10_000
    target_coverage: float = 0.90
    chunk_size: int = 64
    prune_useless: bool = False

    def validate(self) -> None:
        """Range-check the selection knobs; raise :class:`ExperimentError`."""
        _check(self.max_vectors >= 1, "u.max_vectors must be >= 1")
        _check(0.0 < self.target_coverage <= 1.0,
               "u.target_coverage must be in (0, 1]")
        _check(self.chunk_size >= 1, "u.chunk_size must be >= 1")


@dataclass(frozen=True)
class AdiSpec:
    """How ``ADI(f)`` summarizes ``ndet`` over ``D(f)``."""

    mode: str = "minimum"

    def validate(self) -> None:
        """Check the mode spelling; raise :class:`ExperimentError`."""
        _check(self.mode in _ADI_MODES,
               f"adi.mode {self.mode!r} not in {_ADI_MODES}")

    def to_mode(self):
        """The :class:`repro.adi.index.AdiMode` this spec names."""
        from repro.adi.index import AdiMode

        return AdiMode(self.mode)


@dataclass(frozen=True)
class OrderSpec:
    """Which fault order feeds the test generator."""

    name: str = "0dynm"

    def validate(self) -> None:
        """Check the order is registered; raise :class:`ExperimentError`."""
        from repro.adi import ORDERS

        _check(self.name in ORDERS,
               f"order.name {self.name!r} unknown; "
               f"available: {sorted(ORDERS)}")


@dataclass(frozen=True)
class TestGenSpec:
    """Deterministic test-generation knobs (paper Section 4)."""

    # Not a test class despite the Test* name: keep pytest collection away
    # from test modules that import it.
    __test__ = False

    backtrack_limit: int = 200
    fill: str = "random"

    def validate(self) -> None:
        """Range-check the ATPG knobs; raise :class:`ExperimentError`."""
        _check(self.backtrack_limit >= 0,
               "testgen.backtrack_limit must be >= 0")
        _check(self.fill in _FILL_POLICIES,
               f"testgen.fill {self.fill!r} not in {_FILL_POLICIES}")

    def to_config(self, seed: int, backend: Optional[str]):
        """The :class:`repro.atpg.engine.TestGenConfig` this spec names."""
        from repro.atpg.engine import TestGenConfig

        return TestGenConfig(
            backtrack_limit=self.backtrack_limit,
            fill=self.fill,
            seed=seed,
            backend=backend,
        )


@dataclass(frozen=True)
class BackendSpec:
    """Fault-simulation engine selection (see :mod:`repro.fsim.backend`).

    ``fsim`` is a registry name or ``None`` for the process default
    (which honours ``REPRO_FSIM_BACKEND``).  When ``fsim`` is
    ``"parallel"`` (the sharded multi-core engine of
    :mod:`repro.fsim.sharded`), ``shards`` pins the worker count and
    ``shard_base`` the engine each worker runs; either left ``None``
    defers to the backend's defaults (``REPRO_FSIM_SHARDS`` /
    ``REPRO_FSIM_SHARD_BASE``, then core count / ``numpy``).  Backends
    are bit-identical by contract, so this spec is excluded from
    artifact-cache keys — it affects speed, never results — and the
    shard knobs inherit that exclusion.
    """

    fsim: Optional[str] = None
    shards: Optional[int] = None
    shard_base: Optional[str] = None

    def validate(self) -> None:
        """Check the backend is registered; raise :class:`ExperimentError`."""
        if self.fsim is not None:
            from repro.fsim.backend import available_backends

            _check(self.fsim in available_backends(),
                   f"backend.fsim {self.fsim!r} not registered; "
                   f"available: {available_backends()}")
        if self.shards is not None or self.shard_base is not None:
            _check(self.fsim == "parallel",
                   "backend.shards/backend.shard_base need "
                   "backend.fsim 'parallel'")
        if self.shards is not None:
            _check(self.shards >= 1, "backend.shards must be >= 1")
        if self.shard_base is not None:
            from repro.fsim.backend import available_backends

            _check(self.shard_base in available_backends()
                   and self.shard_base != "parallel",
                   f"backend.shard_base {self.shard_base!r} must be a "
                   f"registered non-parallel backend; available: "
                   f"{sorted(set(available_backends()) - {'parallel'})}")

    def fsim_spec(self) -> Optional[str]:
        """The backend-name string consumers resolve, shard knobs encoded.

        Plain names pass through; ``parallel`` with knobs becomes a
        ``parallel[:SHARDS[:BASE]]`` spec string understood by
        :func:`repro.fsim.backend.create_backend`, so every ``backend=``
        channel stays a string.
        """
        if self.fsim != "parallel" or (self.shards is None
                                       and self.shard_base is None):
            return self.fsim
        shards = "" if self.shards is None else str(self.shards)
        if self.shard_base is None:
            return f"parallel:{shards}"
        return f"parallel:{shards}:{self.shard_base}"


@dataclass(frozen=True)
class FlowConfig:
    """The whole pipeline as one frozen, JSON-round-trippable value."""

    circuit: CircuitSpec = field(default_factory=CircuitSpec)
    fault_model: FaultModelSpec = field(default_factory=FaultModelSpec)
    u: USpec = field(default_factory=USpec)
    adi: AdiSpec = field(default_factory=AdiSpec)
    order: OrderSpec = field(default_factory=OrderSpec)
    testgen: TestGenSpec = field(default_factory=TestGenSpec)
    backend: BackendSpec = field(default_factory=BackendSpec)
    seed: int = 2005
    version: int = CONFIG_VERSION

    def validate(self) -> "FlowConfig":
        """Validate the whole tree; returns ``self`` for chaining."""
        _check(self.version == CONFIG_VERSION,
               f"config version {self.version} != supported {CONFIG_VERSION}")
        for spec in (self.circuit, self.fault_model, self.u, self.adi,
                     self.order, self.testgen, self.backend):
            spec.validate()
        return self

    # -- JSON (de)serialization ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The config as a plain nested dict (JSON-ready)."""
        return dataclasses.asdict(self)

    def to_json(self, indent: int = 1) -> str:
        """The config as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FlowConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise :class:`ExperimentError` naming them — a
        misspelled knob must fail loudly, not silently fall back to its
        default.
        """
        _check(isinstance(data, dict), "config document must be a JSON object")
        spec_types = {
            "circuit": CircuitSpec,
            "fault_model": FaultModelSpec,
            "u": USpec,
            "adi": AdiSpec,
            "order": OrderSpec,
            "testgen": TestGenSpec,
            "backend": BackendSpec,
        }
        known = set(spec_types) | {"seed", "version"}
        unknown = sorted(set(data) - known)
        _check(not unknown, f"unknown config keys {unknown}; known: "
                            f"{sorted(known)}")
        kwargs: Dict[str, Any] = {}
        for key, spec_type in spec_types.items():
            if key in data:
                kwargs[key] = _spec_from_dict(spec_type, key, data[key])
        for scalar in ("seed", "version"):
            if scalar in data:
                _check(isinstance(data[scalar], int),
                       f"{scalar} must be an integer")
                kwargs[scalar] = data[scalar]
        return FlowConfig(**kwargs)

    @staticmethod
    def from_json(source: Union[str, Path]) -> "FlowConfig":
        """Rebuild a config from a JSON document or a path to one.

        A :class:`~pathlib.Path` is always read; a string is treated as
        a file path when a file exists there, and as inline JSON text
        otherwise.
        """
        if isinstance(source, Path):
            text = source.read_text()
        else:
            text = source
            if "\n" not in source and "{" not in source:
                try:
                    if Path(source).is_file():
                        text = Path(source).read_text()
                except OSError:
                    pass  # e.g. a name too long to stat: inline text
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"config is not valid JSON: {exc}") from exc
        return FlowConfig.from_dict(data)

    # -- derived views -------------------------------------------------------

    def replace(self, **changes: Any) -> "FlowConfig":
        """A copy with top-level fields replaced (specs or scalars)."""
        return dataclasses.replace(self, **changes)

    def testgen_config(self):
        """The :class:`repro.atpg.engine.TestGenConfig` of this run."""
        return self.testgen.to_config(self.seed, self.backend.fsim_spec())

    def fingerprint(self) -> str:
        """A cheap stable identity of the *literal* config document.

        Unlike :meth:`repro.flow.flow.Flow.run_key` this hashes the
        config exactly as given (backend knobs included, no file
        contents read), so it is safe to compute before any I/O — the
        flow server uses it to label requests in logs and metrics.
        """
        from repro.flow.cache import stable_hash

        return stable_hash(self.to_dict())

    def requires_local_files(self) -> bool:
        """Whether running this config reads files off the local disk.

        ``bench`` circuit specs name an arbitrary netlist path; a
        service accepting configs from the network refuses them unless
        explicitly allowed (see ``repro serve --allow-bench``).
        """
        return self.circuit.kind == "bench"


def _spec_from_dict(spec_type: type, key: str, data: Any):
    """Build one sub-spec, rejecting unknown fields by name."""
    _check(isinstance(data, dict), f"config section {key!r} must be an object")
    names = {f.name for f in fields(spec_type)}
    unknown = sorted(set(data) - names)
    _check(not unknown,
           f"unknown keys {unknown} in config section {key!r}; "
           f"known: {sorted(names)}")
    return spec_type(**data)
