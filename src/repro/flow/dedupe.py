"""Single-flight request coalescing for the flow server.

The scaling premise of :mod:`repro.flow.server` is that repeated traffic
is cheap: warm requests answer from the artifact cache, and *concurrent*
identical requests must not each run the pipeline.  This module provides
the primitive for the second half — an :class:`InflightTable` that, per
content-address key, admits exactly one *leader* computation and
attaches every concurrent duplicate request as a *follower*:

* the leader runs the flow, publishes per-stage progress events, and
  finally a result (or an exception);
* followers subscribe mid-flight and receive a replay of the events so
  far plus everything still to come, then the shared result.

Keys are :meth:`repro.flow.flow.Flow.run_key` content addresses, so two
requests dedupe exactly when they would compute identical results — a
config differing only in backend selection coalesces too.

The table is process-local (threads of one server).  Cross-process
safety is the artifact cache's job (per-key file locks); this layer only
prevents redundant *computation* inside one server.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.telemetry import MetricsRegistry

#: Sentinel closing a follower's event stream.
_DONE = object()


class Computation:
    """One in-flight keyed computation: a result slot plus an event log
    that late subscribers replay from the start."""

    def __init__(self, key: str):
        self.key = key
        self.done = threading.Event()
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.followers = 0
        self._lock = threading.Lock()
        self._events: List[Any] = []
        self._subscribers: List["queue.SimpleQueue[Any]"] = []

    def publish(self, event: Any) -> None:
        """Record one progress event and fan it out to subscribers.

        Events are enqueued under the lock (``SimpleQueue.put`` never
        blocks) so the ``DONE`` sentinel :meth:`finish` appends is
        always the last item a subscriber sees; a publish after finish
        is dropped rather than enqueued behind the closed stream.
        """
        with self._lock:
            if self.done.is_set():
                return
            self._events.append(event)
            for q in self._subscribers:
                q.put(event)

    def subscribe(self) -> "queue.SimpleQueue[Any]":
        """A queue yielding every event (past and future), then the
        ``DONE`` sentinel once :meth:`finish` has run."""
        q: "queue.SimpleQueue[Any]" = queue.SimpleQueue()
        with self._lock:
            for event in self._events:
                q.put(event)
            if self.done.is_set():
                q.put(_DONE)
            else:
                self._subscribers.append(q)
        return q

    def events(self, q: "queue.SimpleQueue[Any]"):
        """Iterate a subscription queue until the stream closes."""
        while True:
            event = q.get()
            if event is _DONE:
                return
            yield event

    def next_event(self, q: "queue.SimpleQueue[Any]",
                   timeout: Optional[float] = None) -> Optional[Any]:
        """The next event from a subscription queue, or ``None`` once the
        stream is closed.

        Raises :class:`queue.Empty` on timeout — the primitive behind
        deadline-bounded streaming relays: the server calls this with
        the request budget's remaining seconds and turns the timeout
        into a 504 event instead of blocking with the leader forever.
        Events are never ``None``, so ``None`` unambiguously means done.
        """
        event = q.get(timeout=timeout)
        return None if event is _DONE else event

    def progress(self) -> List[Any]:
        """A snapshot of the events published so far (for partial-result
        reporting on request timeouts)."""
        with self._lock:
            return list(self._events)

    def finish(self, result: Any = None,
               exception: Optional[BaseException] = None) -> None:
        """Publish the outcome and close every subscriber stream."""
        with self._lock:
            self.result = result
            self.exception = exception
            self.done.set()
            subscribers = self._subscribers
            self._subscribers = []
        for q in subscribers:
            q.put(_DONE)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the leader finished; returns ``False`` on timeout."""
        return self.done.wait(timeout)

    def outcome(self) -> Any:
        """The leader's result, re-raising its exception for followers."""
        if self.exception is not None:
            raise self.exception
        return self.result


class InflightTable:
    """The per-key single-flight registry.

    :meth:`lease` hands the caller a :class:`Computation` plus a
    leadership flag; exactly one concurrent caller per key leads.  The
    leader must call :meth:`complete` in a ``finally`` — it closes the
    computation and removes it from the table so later requests (no
    longer concurrent) start fresh, answering from the artifact cache.

    Dedupe accounting lives on a telemetry registry (injected by the
    flow server so ``/metrics`` and ``/stats`` read one source):
    ``repro_dedupe_coalesced_total`` counts follower attachments,
    ``repro_dedupe_leaders_total`` counts admitted leaders, and
    ``repro_dedupe_inflight_keys`` gauges the live table size.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, Computation] = {}
        self.registry = registry if registry is not None else MetricsRegistry()
        self._coalesced = self.registry.counter(
            "repro_dedupe_coalesced_total",
            "Requests coalesced onto an in-flight identical computation.",
        ).labels()
        self._leaders = self.registry.counter(
            "repro_dedupe_leaders_total",
            "Computations admitted as single-flight leaders.",
        ).labels()
        self._inflight_gauge = self.registry.gauge(
            "repro_dedupe_inflight_keys",
            "Distinct keys currently computing.",
        ).labels()

    def lease(self, key: str) -> Tuple[Computation, bool]:
        """The computation for ``key`` and whether the caller leads it."""
        with self._lock:
            entry = self._inflight.get(key)
            if entry is not None:
                entry.followers += 1
                self._coalesced.inc()
                return entry, False
            entry = Computation(key)
            self._inflight[key] = entry
            self._leaders.inc()
            self._inflight_gauge.set(len(self._inflight))
            return entry, True

    def complete(self, entry: Computation, result: Any = None,
                 exception: Optional[BaseException] = None) -> None:
        """Leader-only: publish the outcome and retire the entry."""
        entry.finish(result, exception=exception)
        with self._lock:
            if self._inflight.get(entry.key) is entry:
                del self._inflight[entry.key]
            self._inflight_gauge.set(len(self._inflight))

    def run(self, key: str, compute: Callable[[Computation], Any]) -> \
            Tuple[Any, bool]:
        """Single-flight ``compute`` under ``key``.

        Returns ``(result, led)``.  The leader executes
        ``compute(entry)`` (publishing progress through ``entry``);
        followers block for the shared outcome, and a leader exception
        propagates to every coalesced caller.
        """
        entry, leads = self.lease(key)
        if not leads:
            entry.wait()
            return entry.outcome(), False
        try:
            result = compute(entry)
        except BaseException as exc:
            self.complete(entry, exception=exc)
            raise
        self.complete(entry, result)
        return result, True

    def stats(self) -> Dict[str, int]:
        """Current in-flight count and the lifetime dedupe total.

        The keys are deprecated aliases of the registry series
        (``repro_dedupe_inflight_keys`` / ``repro_dedupe_coalesced_total``
        on ``GET /metrics``), kept for ``/stats`` compatibility.
        """
        with self._lock:
            return {
                "inflight": len(self._inflight),
                "deduped_total": int(self._coalesced.value),
            }
