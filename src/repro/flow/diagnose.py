"""Diagnosis-as-a-service plumbing shared by the CLI and the server.

``repro diagnose`` and ``POST /diagnose`` do the same thing: resolve a
:class:`~repro.flow.config.FlowConfig` to a pass/fail dictionary (the
flow's circuit x faults x generated tests, built through the configured
fault-sim backend), run the batched pipeline of
:mod:`repro.diagnosis.pipeline` over a fail log, and emit one
``repro.diagnosis/v1`` JSON document.  This module owns the shared
pieces so the two surfaces cannot drift:

* :class:`DiagnosisContext` — dictionary + compressed form + chain
  ranker for one flow (the unit the server memoizes per run key);
* :func:`parse_fail_entries` — the wire format of device records
  (``{"device": id, "failing_tests": [...]}`` plus optional
  ``"failing_outputs"``) to a :class:`~repro.diagnosis.pipeline.FailLog`;
* :func:`diagnosis_document` — batch run → response document, faults
  serialized with the registered fault model's JSON codec.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.diagnosis.chain import ChainRanker, failing_outputs_mask
from repro.diagnosis.compress import (
    CompressedDictionary,
    compress_dictionary,
)
from repro.diagnosis.dictionary import (
    PassFailDictionary,
    build_pass_fail_dictionary,
)
from repro.diagnosis.pipeline import DiagnosisBatchReport, FailLog, \
    diagnose_batch
from repro.errors import DiagnosisInputError
from repro.faults.registry import fault_model
from repro.flow.flow import Flow
from repro.telemetry import span
from repro.utils.detmatrix import DetectionMatrix

#: Response schema of ``repro diagnose --json`` and ``POST /diagnose``.
DIAGNOSIS_SCHEMA = "repro.diagnosis/v1"


@dataclass(frozen=True)
class DiagnosisContext:
    """Everything needed to serve diagnosis requests for one flow config.

    Building one runs the flow's circuit/faults/testgen stages (cached
    by the artifact cache like any flow run) plus one full-fault-universe
    dictionary simulation; servers memoize contexts per
    :meth:`~repro.flow.flow.Flow.run_key`.
    """

    key: str
    fault_model_name: str
    dictionary: PassFailDictionary
    compressed: CompressedDictionary
    ranker: ChainRanker

    @property
    def num_tests(self) -> int:
        """Tests covered by the dictionary."""
        return self.dictionary.num_tests


def build_diagnosis_context(flow: Flow) -> DiagnosisContext:
    """Resolve a flow to its diagnosis dictionary (+ compressed + chain).

    The dictionary simulates every target fault against the flow's
    generated test set through the configured fault-sim backend —
    exactly the batch shape the vectorized engines are fastest at.
    """
    with span("diagnosis.context"):
        circ = flow.circuit()
        faults = flow.faults()
        tests = flow.tests().tests
        dictionary = build_pass_fail_dictionary(
            circ, faults, tests, backend=flow.config.backend.fsim
        )
        return DiagnosisContext(
            key=flow.run_key(),
            fault_model_name=flow.config.fault_model.name,
            dictionary=dictionary,
            compressed=compress_dictionary(dictionary),
            ranker=ChainRanker(circ),
        )


def parse_fail_entries(entries: Any, num_tests: int) -> FailLog:
    """Decode the wire-format device list into a :class:`FailLog`.

    ``entries`` must be a list of ``{"device": id, "failing_tests":
    [t, ...]}`` records, optionally carrying ``"failing_outputs"``
    (primary-output positions).  Anything malformed raises
    :class:`~repro.errors.DiagnosisInputError` naming the record.
    """
    if not isinstance(entries, list):
        raise DiagnosisInputError(
            f"devices must be a list of records, got "
            f"{type(entries).__name__}"
        )
    device_ids: List[str] = []
    masks: List[int] = []
    outputs: List[Optional[int]] = []
    saw_outputs = False
    for index, record in enumerate(entries):
        if not isinstance(record, dict):
            raise DiagnosisInputError(
                f"devices[{index}] must be an object, got "
                f"{type(record).__name__}"
            )
        failing = record.get("failing_tests")
        if not isinstance(failing, list):
            raise DiagnosisInputError(
                f"devices[{index}].failing_tests must be a list of "
                f"test indices"
            )
        mask = 0
        for t in failing:
            if not isinstance(t, int) or isinstance(t, bool) \
                    or not 0 <= t < num_tests:
                raise DiagnosisInputError(
                    f"devices[{index}]: failing test {t!r} out of range "
                    f"0..{num_tests - 1}"
                )
            mask |= 1 << t
        device_ids.append(str(record.get("device", f"device{index:06d}")))
        masks.append(mask)
        if "failing_outputs" in record:
            raw = record["failing_outputs"]
            if not isinstance(raw, list) or any(
                    not isinstance(k, int) or isinstance(k, bool)
                    for k in raw):
                raise DiagnosisInputError(
                    f"devices[{index}].failing_outputs must be a list "
                    f"of output positions"
                )
            saw_outputs = True
            outputs.append(failing_outputs_mask(1 << 62, raw))
        else:
            outputs.append(None)
    return FailLog(
        num_tests=num_tests,
        device_ids=tuple(device_ids),
        matrix=DetectionMatrix.from_bigints(masks, num_tests),
        failing_outputs=tuple(outputs) if saw_outputs else None,
    )


def diagnosis_document(context: DiagnosisContext, log: FailLog, *,
                       max_candidates: int = 10,
                       chain: bool = False,
                       source: str = "computed") -> Dict[str, Any]:
    """Run the batch and render the ``repro.diagnosis/v1`` document.

    When the log carries ground truth (synthetic logs from
    :func:`~repro.diagnosis.pipeline.random_fail_log`), the summary
    gains an ``accuracy`` table of hit@k rates.
    """
    ranker = context.ranker if chain else None
    started = time.perf_counter()
    batch = diagnose_batch(
        context.dictionary, log,
        max_candidates=max_candidates,
        compressed=context.compressed,
        chain=ranker,
    )
    elapsed = time.perf_counter() - started
    codec = fault_model(context.fault_model_name)
    devices = [
        {
            "device": batch.device_ids[d],
            "candidates": [
                {"fault": codec.fault_to_json(fault),
                 "site": fault.node,
                 "score": score}
                for fault, score in batch.candidates(d)
            ],
        }
        for d in range(batch.num_devices)
    ]
    summary = batch.summary()
    summary["seconds"] = elapsed
    summary["devices_per_sec"] = (
        batch.num_devices / elapsed if elapsed > 0 else 0.0
    )
    if log.true_positions is not None:
        ks = sorted({k for k in (1, 5, max_candidates) if k >= 1})
        summary["accuracy"] = hit_rates(batch, log.true_positions, ks)
    return {
        "schema": DIAGNOSIS_SCHEMA,
        "key": context.key,
        "source": source,
        "fault_model": context.fault_model_name,
        "summary": summary,
        "devices": devices,
    }


def hit_rates(batch: DiagnosisBatchReport,
              true_positions: Sequence[int],
              ks: Sequence[int] = (1, 5, 10)) -> Dict[str, float]:
    """``hit@k`` accuracy table for synthetic logs with known truth."""
    return {f"hit@{k}": batch.hit_rate(true_positions, k) for k in ks}
