"""JSON codecs for flow stage artifacts.

One pair of functions per artifact type, all JSON-pure (dicts, lists,
strings, numbers) so the artifact cache can persist them as-is:

* pattern blocks — single-vector sets and two-pattern pair sets, words
  as hex strings (big-ints survive JSON losslessly that way);
* fault lists — through the owning fault model's codec
  (:mod:`repro.faults.registry`), so a cached artifact names its model;
* ``U`` selections — the selected block plus the dropping-run summary,
  with faults stored as *indices into the target list* (the fault list
  is itself an upstream artifact; storing positions keeps files small
  and makes tampering detectable);
* ADI results — the detection masks only (hex big-ints: the JSON view
  of the packed detection matrix, stable across representations);
  ``ndet``/``D(f)``/indices are recomputed on load via
  :func:`repro.adi.index.adi_from_detection_words`, which packs the
  masks back into a :class:`~repro.utils.detmatrix.DetectionMatrix`
  once — guaranteeing a deserialized result can never disagree with
  its masks;
* test-generation results and curve reports.

Every decoder validates shape and raises
:class:`repro.errors.ExperimentError` on mismatch — a cache file that
deserializes into nonsense must fail loudly, not propagate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Union

from repro.adi.index import AdiResult, adi_from_detection_words
from repro.adi.metrics import CurveReport
from repro.adi.sampling import USelection
from repro.errors import ExperimentError
from repro.faults.registry import FaultModel, fault_model
from repro.faults.sets import FaultStatus
from repro.fsim.dropping import DropSimResult
from repro.sim.patterns import PatternPairSet, PatternSet


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ExperimentError(f"corrupt flow artifact: {message}")


# -- pattern blocks -----------------------------------------------------------

def pattern_block_to_json(block: Union[PatternSet, PatternPairSet]
                          ) -> Dict[str, Any]:
    """Encode a pattern block (single vectors or pairs) as JSON."""
    if isinstance(block, PatternPairSet):
        return {
            "kind": "pairs",
            "num_inputs": block.num_inputs,
            "num_patterns": block.num_patterns,
            "launch": [hex(w) for w in block.launch.words],
            "capture": [hex(w) for w in block.capture.words],
        }
    return {
        "kind": "single",
        "num_inputs": block.num_inputs,
        "num_patterns": block.num_patterns,
        "words": [hex(w) for w in block.words],
    }


def pattern_block_from_json(data: Dict[str, Any]
                            ) -> Union[PatternSet, PatternPairSet]:
    """Decode :func:`pattern_block_to_json` output."""
    kind = data.get("kind")
    num_inputs = data.get("num_inputs")
    num_patterns = data.get("num_patterns")
    _require(isinstance(num_inputs, int) and isinstance(num_patterns, int),
             "pattern block lacks integer dimensions")
    if kind == "pairs":
        launch = [int(w, 16) for w in data["launch"]]
        capture = [int(w, 16) for w in data["capture"]]
        return PatternPairSet(
            PatternSet(num_inputs, num_patterns, tuple(launch)),
            PatternSet(num_inputs, num_patterns, tuple(capture)),
        )
    _require(kind == "single", f"unknown pattern block kind {kind!r}")
    words = [int(w, 16) for w in data["words"]]
    return PatternSet(num_inputs, num_patterns, tuple(words))


# -- fault lists --------------------------------------------------------------

def faults_to_json(model: Union[str, FaultModel],
                   faults: Sequence) -> Dict[str, Any]:
    """Encode a fault list under its model's codec."""
    model = fault_model(model)
    return {
        "model": model.name,
        "faults": [model.fault_to_json(f) for f in faults],
    }


def faults_from_json(data: Dict[str, Any]) -> List:
    """Decode :func:`faults_to_json` output (model name is embedded)."""
    model = fault_model(data.get("model"))
    entries = data.get("faults")
    _require(isinstance(entries, list), "fault list payload is not a list")
    return [model.fault_from_json(entry) for entry in entries]


# -- U selection --------------------------------------------------------------

def selection_to_json(selection: USelection,
                      faults: Sequence) -> Dict[str, Any]:
    """Encode a :class:`USelection` relative to its target fault list."""
    index = {f: i for i, f in enumerate(faults)}
    first = selection.dropped_sim.first_detection
    _require(all(f in index for f in first),
             "selection references faults outside the target list")
    return {
        "patterns": pattern_block_to_json(selection.patterns),
        "candidates_drawn": selection.candidates_drawn,
        "total_faults": selection.dropped_sim.total_faults,
        "num_simulated": selection.dropped_sim.num_simulated,
        "first_detection": sorted(
            [index[f], vec] for f, vec in first.items()
        ),
    }


def selection_from_json(data: Dict[str, Any],
                        faults: Sequence) -> USelection:
    """Decode :func:`selection_to_json` output against the same fault list."""
    entries = data.get("first_detection")
    _require(isinstance(entries, list), "selection lacks first_detection")
    first = {}
    for entry in entries:
        _require(isinstance(entry, list) and len(entry) == 2,
                 "malformed first_detection entry")
        fault_idx, vec = entry
        _require(0 <= fault_idx < len(faults),
                 f"fault index {fault_idx} outside target list")
        first[faults[fault_idx]] = int(vec)
    dropped = DropSimResult(
        total_faults=int(data["total_faults"]),
        num_simulated=int(data["num_simulated"]),
        first_detection=first,
    )
    detected = tuple(f for f in faults if f in first)
    return USelection(
        patterns=pattern_block_from_json(data["patterns"]),
        detected_by_u=detected,
        dropped_sim=dropped,
        candidates_drawn=int(data["candidates_drawn"]),
    )


# -- ADI results --------------------------------------------------------------

def adi_to_json(result: AdiResult) -> Dict[str, Any]:
    """Encode an :class:`AdiResult` as its defining detection masks."""
    return {
        "num_vectors": result.num_vectors,
        "mode": result.mode.value,
        "detection_masks": [hex(m) for m in result.detection_masks],
    }


def adi_from_json(data: Dict[str, Any], faults: Sequence) -> AdiResult:
    """Decode :func:`adi_to_json` output against the same fault list.

    ``ndet``, ``D(f)`` and the indices are *recomputed* from the masks —
    the cheap tail of :func:`repro.adi.index.compute_adi` — so a cached
    result is bit-identical to a fresh one by construction.
    """
    from repro.adi.index import AdiMode

    masks = data.get("detection_masks")
    _require(isinstance(masks, list) and len(masks) == len(faults),
             "ADI masks do not match the target fault list")
    words = [int(m, 16) for m in masks]
    return adi_from_detection_words(
        faults, words, int(data["num_vectors"]), AdiMode(data["mode"])
    )


# -- test-generation results --------------------------------------------------

def testgen_to_json(model: Union[str, FaultModel], result) -> Dict[str, Any]:
    """Encode a (transition) test-generation result.

    Works for both :class:`repro.atpg.engine.TestGenResult` and
    :class:`repro.atpg.transition.TransitionTestGenResult`; the model
    name embedded in the payload picks the right type on load.
    """
    model = fault_model(model)
    payload = {
        "model": model.name,
        "circuit_name": result.circuit_name,
        "tests": pattern_block_to_json(result.tests),
        "status": [
            [model.fault_to_json(f), status.value]
            for f, status in result.status.items()
        ],
        "detected_per_test": list(result.detected_per_test),
        "targeted_faults": [
            model.fault_to_json(f) for f in result.targeted_faults
        ],
        "podem_calls": result.podem_calls,
        "backtracks": result.backtracks,
        "runtime_seconds": result.runtime_seconds,
    }
    if hasattr(result, "launch_fallbacks"):
        payload["launch_fallbacks"] = result.launch_fallbacks
    return payload


def testgen_from_json(data: Dict[str, Any]):
    """Decode :func:`testgen_to_json` output to the model's result type."""
    model = fault_model(data.get("model"))
    entries = data.get("status")
    _require(isinstance(entries, list), "testgen payload lacks status list")
    status = {
        model.fault_from_json(fault_data): FaultStatus(value)
        for fault_data, value in entries
    }
    common = dict(
        circuit_name=data["circuit_name"],
        tests=pattern_block_from_json(data["tests"]),
        status=status,
        detected_per_test=[int(v) for v in data["detected_per_test"]],
        targeted_faults=[
            model.fault_from_json(f) for f in data["targeted_faults"]
        ],
        podem_calls=int(data["podem_calls"]),
        backtracks=int(data["backtracks"]),
        runtime_seconds=float(data["runtime_seconds"]),
    )
    # The registered model owns its result type (and any extra fields),
    # exactly as it owns the fault codec — no model-name switches here.
    return model.testgen_result_from_json(common, data)


# -- curve reports ------------------------------------------------------------

def curve_to_json(report: CurveReport) -> Dict[str, Any]:
    """Encode a :class:`CurveReport`."""
    return {
        "curve": list(report.curve),
        "total_faults": report.total_faults,
    }


def curve_from_json(data: Dict[str, Any]) -> CurveReport:
    """Decode :func:`curve_to_json` output."""
    curve = data.get("curve")
    _require(isinstance(curve, list), "curve payload is not a list")
    return CurveReport(
        curve=tuple(int(v) for v in curve),
        total_faults=int(data["total_faults"]),
    )
