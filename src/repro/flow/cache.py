"""Content-addressed artifact cache for flow stage results.

Every stage of a :class:`repro.flow.flow.Flow` run produces one artifact
(collapsed faults, the selected ``U``, the ADI data, a permutation, a
test set, a curve report).  Each artifact is keyed by a *stable* SHA-256
hash of

* the stage name and a format version,
* the JSON form of the config subtree the stage consumes, and
* the keys of its upstream artifacts,

so a key names the full provenance of a result: change any knob and
every downstream key changes with it, while untouched upstream stages
keep their keys — re-running an experiment with one knob changed
recomputes only the stages below the change.  This is the scaling
primitive for sweeping many circuits × orders × models: the sweep pays
for each distinct sub-pipeline once.

Artifacts persist as JSON files under ``results/cache/<stage>/<key>.json``
(override with ``REPRO_FLOW_CACHE_DIR`` or an explicit root).  Writes are
atomic (temp file + rename) and serialized per key through an on-disk
lock, so any number of threads or processes can hammer one key and the
payload is written exactly once (:meth:`ArtifactCache.put` is
put-if-absent by default); corrupt or truncated files — a killed run, a
full disk — are detected on read, deleted, and transparently recomputed.
Keys are pure content hashes, so the cache is safe to share between
processes and to prune at any time (``repro cache prune``).

For long-running services (:mod:`repro.flow.server`) the cache also
keeps an append-only *access ledger* (``ledger.jsonl`` under the root):
every hit and put appends one line, and :meth:`ArtifactCache.prune`
accepts a byte budget (``max_bytes``) that evicts least-recently-used
artifacts first until the cache fits.

Degradation: a cache that cannot write — ``ENOSPC``, a read-only
filesystem, a permission flip under a running server — must never turn
into request failures.  Any ``OSError`` on the artifact write path flips
the instance into a sticky *pass-through* mode: subsequent puts
short-circuit (counted under ``repro_cache_puts_total{outcome="degraded"}``),
reads keep working against whatever is already on disk, and the flow
recomputes what it cannot persist.  Ledger appends and prunes absorb
``OSError`` the same way without flipping the sticky flag (the ledger
is advisory).  Every absorbed error increments
``repro_cache_degraded_total{op=...}`` and logs one structured line per
op; :meth:`ArtifactCache.reset_degraded` re-arms writes after the
operator fixes the disk.  The ``cache.write.enospc`` and
``cache.read.corrupt`` chaos sites (:mod:`repro.resilience.chaos`)
inject exactly these failures for tests and CI smoke runs.

Telemetry: every cache instance records into a
:class:`repro.telemetry.MetricsRegistry` (private by default, injectable
for aggregation) — hit/miss and put outcomes as counters
(``repro_cache_requests_total``, ``repro_cache_puts_total``), get/put/
prune latencies as histograms (``repro_cache_op_seconds``), and bytes on
disk as a gauge (``repro_cache_disk_bytes``, refreshed by
:meth:`ArtifactCache.stats` — i.e. on every ``/stats`` or ``/metrics``
scrape).  :meth:`ArtifactCache.counters` is a *read view* of the same
registry series under the historical key names (``hits`` / ``misses`` /
``puts_written`` / ``puts_deduped``), kept as deprecated aliases so
``/stats`` and ``/metrics`` can never disagree.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.resilience import chaos as _chaos
from repro.telemetry import MetricsRegistry, log_event

try:  # POSIX advisory locks; per open-file-description, so threads contend too
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback below
    fcntl = None  # type: ignore[assignment]

#: Bump when any artifact's JSON layout changes; part of every key.
CACHE_FORMAT_VERSION = 1

#: Environment variable overriding the default cache root.
CACHE_ENV_VAR = "REPRO_FLOW_CACHE_DIR"

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_ROOT = os.path.join("results", "cache")

#: File name of the access ledger, directly under the cache root.
LEDGER_NAME = "ledger.jsonl"


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text for hashing: sorted keys, tight separators.

    Raises ``TypeError`` for values JSON cannot represent — hashing must
    never silently coerce (that is how two different configs end up with
    one key).
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of an object's canonical JSON form.

    Independent of process, platform and ``PYTHONHASHSEED`` — the
    property the whole cache rests on (tested by hashing in a
    subprocess).
    """
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def stage_key(stage: str, config_part: Any,
              upstream: Sequence[str] = ()) -> str:
    """The content-address of one stage result.

    ``config_part`` is the JSON-ready config subtree the stage consumes;
    ``upstream`` the keys of the artifacts it builds on (order matters
    and is fixed per stage).
    """
    return stable_hash({
        "stage": stage,
        "format": CACHE_FORMAT_VERSION,
        "config": config_part,
        "upstream": list(upstream),
    })


def default_cache_root() -> Path:
    """``$REPRO_FLOW_CACHE_DIR`` or ``results/cache``."""
    override = os.environ.get(CACHE_ENV_VAR, "").strip()
    return Path(override) if override else Path(DEFAULT_CACHE_ROOT)


class _FileLock:
    """An exclusive on-disk lock: ``flock`` where available, else a
    spin on ``O_CREAT|O_EXCL``.

    ``flock`` locks attach to the open file description, so two threads
    of one process contend exactly like two processes do — one primitive
    covers both the threaded server and parallel CLI runs sharing a
    cache directory.
    """

    def __init__(self, path: Path):
        self.path = path
        self._fd: Optional[int] = None

    def __enter__(self) -> "_FileLock":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is not None:
            self._fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        else:  # pragma: no cover - exercised only on non-POSIX hosts
            while True:
                try:
                    self._fd = os.open(
                        self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644
                    )
                    break
                except FileExistsError:
                    time.sleep(0.005)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            else:  # pragma: no cover
                os.unlink(self.path)
        finally:
            os.close(self._fd)
            self._fd = None


class ArtifactCache:
    """A directory of content-addressed JSON artifacts, one per stage result.

    The cache never interprets payloads — (de)serialization belongs to
    :mod:`repro.flow.serialize` — it only guarantees that what
    :meth:`get` returns is exactly what :meth:`put` stored under the same
    key, or ``None``.  Safe for concurrent use from threads and
    processes: writes are per-key locked and atomic, reads never observe
    a torn file.

    ``ledger`` switches the on-disk access ledger (needed for LRU
    pruning); it defaults on and costs one appended line per hit/put.
    ``registry`` injects the telemetry registry the cache records into
    (the flow server aggregates its cache's registry into ``/metrics``);
    by default each cache gets a private one, so independent caches in
    one process never mix counters.
    """

    #: Legacy ``counters()`` key → (family, label key, label value).
    _COUNTER_SERIES = {
        "hits": ("repro_cache_requests_total", "result", "hit"),
        "misses": ("repro_cache_requests_total", "result", "miss"),
        "puts_written": ("repro_cache_puts_total", "outcome", "written"),
        "puts_deduped": ("repro_cache_puts_total", "outcome", "deduped"),
    }

    def __init__(self, root: Union[str, Path, None] = None, *,
                 ledger: bool = True,
                 registry: Optional[MetricsRegistry] = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.ledger_enabled = ledger
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests = self.registry.counter(
            "repro_cache_requests_total",
            "Artifact cache reads by result (hit/miss).")
        self._puts = self.registry.counter(
            "repro_cache_puts_total",
            "Artifact cache writes by outcome (written/deduped).")
        self._op_seconds = self.registry.histogram(
            "repro_cache_op_seconds",
            "Artifact cache operation latency by op (get/put/prune).")
        self._disk_bytes = self.registry.gauge(
            "repro_cache_disk_bytes",
            "Artifact bytes on disk (refreshed by stats()/scrapes).")
        self._degraded_counter = self.registry.counter(
            "repro_cache_degraded_total",
            "OSErrors absorbed by the cache write path, by op.")
        self._degraded = False
        self._degraded_logged: set = set()
        self._degraded_lock = threading.Lock()

    @property
    def degraded(self) -> bool:
        """Whether the write path is in sticky pass-through mode."""
        return self._degraded

    def reset_degraded(self) -> None:
        """Re-arm the write path after the underlying disk is fixed."""
        with self._degraded_lock:
            self._degraded = False
            self._degraded_logged.clear()

    def _note_write_error(self, op: str, exc: OSError, *,
                          sticky: bool = False) -> None:
        """Count (and once per op, log) an absorbed write-path OSError.

        ``sticky=True`` additionally flips the cache into pass-through
        mode: further puts short-circuit until :meth:`reset_degraded`.
        """
        self._degraded_counter.labels(op=op).inc()
        with self._degraded_lock:
            first = op not in self._degraded_logged
            if first:
                self._degraded_logged.add(op)
            if sticky:
                self._degraded = True
        if first:
            name = errno.errorcode.get(exc.errno, "") if exc.errno else ""
            log_event("cache_degraded", level="warning", op=op,
                      sticky=sticky, errno=name or exc.errno,
                      error=str(exc), root=str(self.root))

    def _path(self, stage: str, key: str) -> Path:
        return self.root / stage / f"{key}.json"

    def _lock_path(self, stage: str, key: str) -> Path:
        # Dot-prefixed so stats/prune globbing on *.json never sees it.
        return self.root / stage / f".{key}.lock"

    def _ledger_path(self) -> Path:
        return self.root / LEDGER_NAME

    def _count(self, name: str, by: int = 1) -> None:
        family, label, value = self._COUNTER_SERIES[name]
        if family == "repro_cache_requests_total":
            self._requests.labels(**{label: value}).inc(by)
        else:
            self._puts.labels(**{label: value}).inc(by)

    def counters(self) -> Dict[str, int]:
        """This cache's hit/miss/put counters under their historical keys.

        Deprecated aliases: the values are read straight from the
        telemetry registry series (``repro_cache_requests_total`` /
        ``repro_cache_puts_total``), so this view and ``GET /metrics``
        agree by construction.
        """
        out = {}
        for name, (family, label, value) in self._COUNTER_SERIES.items():
            series = (self._requests
                      if family == "repro_cache_requests_total"
                      else self._puts)
            out[name] = int(series.labels(**{label: value}).value)
        return out

    def _observe_op(self, op: str, started: float) -> None:
        self._op_seconds.labels(op=op).observe(time.perf_counter() - started)

    # -- ledger --------------------------------------------------------------

    def _ledger_append(self, event: str, stage: str, key: str) -> None:
        if not self.ledger_enabled or self._degraded:
            return
        line = canonical_json({
            "event": event, "stage": stage, "key": key, "ts": time.time(),
        })
        path = self._ledger_path()
        try:
            with _FileLock(path.with_suffix(".lock")):
                with open(path, "a") as handle:
                    handle.write(line + "\n")
        except OSError as exc:
            # The ledger is advisory (it only sharpens LRU pruning);
            # never let it fail a read or write of real artifacts.
            self._note_write_error("ledger", exc)

    def _ledger_access_times(self) -> Dict[Tuple[str, str], float]:
        """Last recorded access per (stage, key); empty if no ledger."""
        times: Dict[Tuple[str, str], float] = {}
        try:
            text = self._ledger_path().read_text()
        except OSError:
            return times
        for line in text.splitlines():
            try:
                entry = json.loads(line)
                times[(entry["stage"], entry["key"])] = float(entry["ts"])
            except (ValueError, TypeError, KeyError):
                continue  # torn tail line from a killed appender
        return times

    def _ledger_compact(self, dropped) -> None:
        """Compact the ledger to one line per surviving artifact.

        ``dropped`` is a predicate over ``(stage, key)`` pairs naming the
        entries to discard.  The ledger is re-read *inside* the ledger
        lock — the same lock :meth:`_ledger_append` takes — so hit/put
        lines appended by concurrent threads between the caller's
        snapshot and this rewrite are preserved, not silently lost.
        """
        if not self.ledger_enabled:
            return
        path = self._ledger_path()
        try:
            with _FileLock(path.with_suffix(".lock")):
                times = self._ledger_access_times()
                lines = [
                    canonical_json({"event": "hit", "stage": stage,
                                    "key": key, "ts": ts})
                    for (stage, key), ts in sorted(times.items(),
                                                   key=lambda item: item[1])
                    if not dropped((stage, key))
                ]
                tmp = path.with_suffix(".tmp")
                tmp.write_text("".join(line + "\n" for line in lines))
                os.replace(tmp, path)
        except OSError:
            pass

    # -- artifact I/O --------------------------------------------------------

    def get(self, stage: str, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for (stage, key), or ``None``.

        A corrupt or truncated file (interrupted writer, bad disk) is
        removed so the caller recomputes and overwrites it.
        """
        started = time.perf_counter()
        try:
            return self._get(stage, key)
        finally:
            self._observe_op("get", started)

    def _get(self, stage: str, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(stage, key)
        try:
            text = path.read_text()
        except (FileNotFoundError, OSError):
            self._count("misses")
            return None
        if _chaos.fire("cache.read.corrupt", stage=stage):
            text = text[: len(text) // 2]  # simulate a torn/garbled file
        try:
            document = json.loads(text)
            if (not isinstance(document, dict)
                    or document.get("key") != key
                    or "payload" not in document):
                raise ValueError("artifact document malformed")
        except (ValueError, TypeError):
            # Corrupt cache entry: recover by deleting, caller recomputes.
            # Taking the key lock keeps the unlink from racing a concurrent
            # writer's rename (we would delete the fresh artifact).
            try:
                with _FileLock(self._lock_path(stage, key)):
                    if self._read_valid(path, key) is None:
                        try:
                            path.unlink()
                        except OSError:
                            pass
            except OSError as exc:
                # Even taking the lock can fail (read-only filesystem);
                # a corrupt entry we cannot delete is still just a miss.
                self._note_write_error("recover", exc)
            self._count("misses")
            return None
        self._count("hits")
        self._ledger_append("hit", stage, key)
        return document["payload"]

    @staticmethod
    def _read_valid(path: Path, key: str) -> Optional[Dict[str, Any]]:
        """The document's payload if ``path`` holds a well-formed artifact
        for ``key``, else ``None`` (no side effects)."""
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError, TypeError):
            return None
        if (not isinstance(document, dict) or document.get("key") != key
                or "payload" not in document):
            return None
        return document["payload"]

    def put(self, stage: str, key: str, payload: Dict[str, Any], *,
            replace: bool = False) -> Path:
        """Persist a payload atomically; returns the artifact path.

        Writes are serialized per key: when several threads or processes
        race a put of the same key, exactly one writes and the rest
        observe the existing artifact and skip (keys are content
        addresses — same key means same payload).  ``replace=True``
        forces the write, for callers replacing an artifact they know to
        be stale (e.g. one that deserialized but failed validation).
        """
        started = time.perf_counter()
        try:
            return self._put(stage, key, payload, replace=replace)
        finally:
            self._observe_op("put", started)

    def _put(self, stage: str, key: str, payload: Dict[str, Any], *,
             replace: bool = False) -> Path:
        path = self._path(stage, key)
        if self._degraded:
            # Pass-through mode: the disk is unwritable; skip cheaply and
            # let the flow keep its computed result in memory.
            self._puts.labels(outcome="degraded").inc()
            return path
        try:
            if _chaos.fire("cache.write.enospc", stage=stage):
                raise OSError(errno.ENOSPC, "chaos: injected ENOSPC")
            path.parent.mkdir(parents=True, exist_ok=True)
            with _FileLock(self._lock_path(stage, key)):
                if not replace and self._read_valid(path, key) is not None:
                    self._count("puts_deduped")
                    return path
                document = {
                    "format": CACHE_FORMAT_VERSION,
                    "stage": stage,
                    "key": key,
                    "payload": payload,
                }
                fd, tmp_name = tempfile.mkstemp(
                    dir=path.parent, prefix=f".{key[:16]}-", suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "w") as handle:
                        json.dump(document, handle)
                    os.replace(tmp_name, path)
                except BaseException:
                    try:
                        os.unlink(tmp_name)
                    except OSError:
                        pass
                    raise
        except OSError as exc:
            # ENOSPC / EROFS / EACCES anywhere on the write path — the
            # mkdir, the lock, the temp file, the rename: flip to
            # pass-through instead of failing the caller's flow.
            self._note_write_error("put", exc, sticky=True)
            self._puts.labels(outcome="degraded").inc()
            return path
        self._count("puts_written")
        self._ledger_append("put", stage, key)
        return path

    def delete(self, stage: str, key: str) -> bool:
        """Remove one artifact (e.g. one that failed validation);
        returns whether a file was removed."""
        with _FileLock(self._lock_path(stage, key)):
            try:
                self._path(stage, key).unlink()
                return True
            except OSError:
                return False

    # -- maintenance ---------------------------------------------------------

    def _artifact_files(self, stage: Optional[str] = None) -> Iterable[Path]:
        roots: List[Path]
        if stage is not None:
            roots = [self.root / stage]
        elif self.root.is_dir():
            roots = [p for p in self.root.iterdir() if p.is_dir()]
        else:
            roots = []
        for directory in roots:
            if directory.is_dir():
                yield from sorted(directory.glob("*.json"))

    def stats(self) -> Dict[str, Any]:
        """Per-stage artifact counts and total size, for ``repro cache``."""
        stages: Dict[str, Dict[str, int]] = {}
        total_files = 0
        total_bytes = 0
        for path in self._artifact_files():
            try:
                size = path.stat().st_size
            except OSError:
                continue  # unlinked by a concurrent prune between glob/stat
            stage = path.parent.name
            entry = stages.setdefault(stage, {"files": 0, "bytes": 0})
            entry["files"] += 1
            entry["bytes"] += size
            total_files += 1
            total_bytes += size
        self._disk_bytes.labels().set(total_bytes)
        return {
            "root": str(self.root),
            "stages": stages,
            "total_files": total_files,
            "total_bytes": total_bytes,
            "degraded": self._degraded,
        }

    def prune(self, stage: Optional[str] = None,
              max_bytes: Optional[int] = None) -> int:
        """Delete artifacts; returns how many were removed.

        Without ``max_bytes`` this clears everything (of one stage, or
        the whole cache) — the historical behaviour.  With ``max_bytes``
        it enforces an LRU size bound instead: least-recently-used
        artifacts (per the access ledger, falling back to file mtime for
        artifacts that predate it) are evicted until the cache's total
        size is within the budget.  Pruning to a budget is idempotent —
        a second call with the same budget removes nothing.
        """
        started = time.perf_counter()
        try:
            return self._prune(stage, max_bytes)
        except OSError as exc:
            # A prune that cannot list or rewrite (dying disk, revoked
            # permissions) removes nothing; it must not fail the caller
            # mid-request.
            self._note_write_error("prune", exc)
            return 0
        finally:
            self._observe_op("prune", started)

    def _prune(self, stage: Optional[str],
               max_bytes: Optional[int]) -> int:
        if max_bytes is None:
            removed = 0
            for path in self._artifact_files(stage):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            if stage is None:
                try:
                    self._ledger_path().unlink()
                except OSError:
                    pass
            else:
                self._ledger_compact(lambda sk: sk[0] == stage)
            return removed
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        times = self._ledger_access_times()
        entries = []  # (last_access, path, size, (stage, key))
        total = 0
        for path in self._artifact_files(stage):
            stage_key_pair = (path.parent.name, path.stem)
            try:
                stat = path.stat()
            except OSError:
                continue
            last = times.get(stage_key_pair, stat.st_mtime)
            entries.append((last, path, stat.st_size, stage_key_pair))
            total += stat.st_size
        removed = 0
        evicted = set()
        for last, path, size, stage_key_pair in sorted(
                entries, key=lambda e: (e[0], str(e[1]))):
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
            evicted.add(stage_key_pair)
        if removed:
            self._ledger_compact(evicted.__contains__)
        return removed
