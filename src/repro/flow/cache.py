"""Content-addressed artifact cache for flow stage results.

Every stage of a :class:`repro.flow.flow.Flow` run produces one artifact
(collapsed faults, the selected ``U``, the ADI data, a permutation, a
test set, a curve report).  Each artifact is keyed by a *stable* SHA-256
hash of

* the stage name and a format version,
* the JSON form of the config subtree the stage consumes, and
* the keys of its upstream artifacts,

so a key names the full provenance of a result: change any knob and
every downstream key changes with it, while untouched upstream stages
keep their keys — re-running an experiment with one knob changed
recomputes only the stages below the change.  This is the scaling
primitive for sweeping many circuits × orders × models: the sweep pays
for each distinct sub-pipeline once.

Artifacts persist as JSON files under ``results/cache/<stage>/<key>.json``
(override with ``REPRO_FLOW_CACHE_DIR`` or an explicit root).  Writes are
atomic (temp file + rename); corrupt or truncated files — a killed run,
a full disk — are detected on read, deleted, and transparently
recomputed.  Keys are pure content hashes, so the cache is safe to share
between processes and to prune at any time (``repro cache prune``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

#: Bump when any artifact's JSON layout changes; part of every key.
CACHE_FORMAT_VERSION = 1

#: Environment variable overriding the default cache root.
CACHE_ENV_VAR = "REPRO_FLOW_CACHE_DIR"

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_ROOT = os.path.join("results", "cache")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text for hashing: sorted keys, tight separators.

    Raises ``TypeError`` for values JSON cannot represent — hashing must
    never silently coerce (that is how two different configs end up with
    one key).
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of an object's canonical JSON form.

    Independent of process, platform and ``PYTHONHASHSEED`` — the
    property the whole cache rests on (tested by hashing in a
    subprocess).
    """
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def stage_key(stage: str, config_part: Any,
              upstream: Sequence[str] = ()) -> str:
    """The content-address of one stage result.

    ``config_part`` is the JSON-ready config subtree the stage consumes;
    ``upstream`` the keys of the artifacts it builds on (order matters
    and is fixed per stage).
    """
    return stable_hash({
        "stage": stage,
        "format": CACHE_FORMAT_VERSION,
        "config": config_part,
        "upstream": list(upstream),
    })


def default_cache_root() -> Path:
    """``$REPRO_FLOW_CACHE_DIR`` or ``results/cache``."""
    override = os.environ.get(CACHE_ENV_VAR, "").strip()
    return Path(override) if override else Path(DEFAULT_CACHE_ROOT)


class ArtifactCache:
    """A directory of content-addressed JSON artifacts, one per stage result.

    The cache never interprets payloads — (de)serialization belongs to
    :mod:`repro.flow.serialize` — it only guarantees that what
    :meth:`get` returns is exactly what :meth:`put` stored under the same
    key, or ``None``.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_cache_root()

    def _path(self, stage: str, key: str) -> Path:
        return self.root / stage / f"{key}.json"

    def get(self, stage: str, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for (stage, key), or ``None``.

        A corrupt or truncated file (interrupted writer, bad disk) is
        removed so the caller recomputes and overwrites it.
        """
        path = self._path(stage, key)
        try:
            text = path.read_text()
        except (FileNotFoundError, OSError):
            return None
        try:
            document = json.loads(text)
            if (not isinstance(document, dict)
                    or document.get("key") != key
                    or "payload" not in document):
                raise ValueError("artifact document malformed")
        except (ValueError, TypeError):
            # Corrupt cache entry: recover by deleting, caller recomputes.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return document["payload"]

    def put(self, stage: str, key: str, payload: Dict[str, Any]) -> Path:
        """Persist a payload atomically; returns the artifact path."""
        path = self._path(stage, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "format": CACHE_FORMAT_VERSION,
            "stage": stage,
            "key": key,
            "payload": payload,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -- maintenance ---------------------------------------------------------

    def _artifact_files(self, stage: Optional[str] = None) -> Iterable[Path]:
        roots: List[Path]
        if stage is not None:
            roots = [self.root / stage]
        elif self.root.is_dir():
            roots = [p for p in self.root.iterdir() if p.is_dir()]
        else:
            roots = []
        for directory in roots:
            if directory.is_dir():
                yield from sorted(directory.glob("*.json"))

    def stats(self) -> Dict[str, Any]:
        """Per-stage artifact counts and total size, for ``repro cache``."""
        stages: Dict[str, Dict[str, int]] = {}
        total_files = 0
        total_bytes = 0
        for path in self._artifact_files():
            stage = path.parent.name
            entry = stages.setdefault(stage, {"files": 0, "bytes": 0})
            size = path.stat().st_size
            entry["files"] += 1
            entry["bytes"] += size
            total_files += 1
            total_bytes += size
        return {
            "root": str(self.root),
            "stages": stages,
            "total_files": total_files,
            "total_bytes": total_bytes,
        }

    def prune(self, stage: Optional[str] = None) -> int:
        """Delete all artifacts (of one stage, or everywhere); returns count."""
        removed = 0
        for path in self._artifact_files(stage):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
