"""The ``Flow`` facade: the whole ADI pipeline as one object.

A :class:`Flow` binds a :class:`repro.flow.config.FlowConfig` to the
staged pipeline the paper defines::

    circuit → faults → U selection → ADI → order → test generation → curve

Each stage is exposed as a method (:meth:`Flow.circuit`,
:meth:`Flow.faults`, :meth:`Flow.selection`, :meth:`Flow.adi`,
:meth:`Flow.permutation`, :meth:`Flow.tests`, :meth:`Flow.report`) and
computed at most once per Flow — and, when an
:class:`~repro.flow.cache.ArtifactCache` is attached, at most once per
*content address*: every stage result is keyed by the config subtree it
consumes plus its upstream artifact keys, so re-running with one knob
changed recomputes only the stages below the change, and a warm re-run
of an identical config loads every stage from disk.

Order-dependent stages (permutation, test generation, curve) take an
optional order name so one Flow serves a whole order comparison — the
upstream stages (faults, ``U``, ADI) are shared, exactly like the
memoizing experiment runner the facade replaces.

The facade dispatches through the fault-model registry
(:mod:`repro.faults.registry`): a config naming a newly registered model
runs end to end with no change here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.adi import ORDERS, AdiResult, USelection, compute_adi, select_u
from repro.adi.metrics import CurveReport, curve_report
from repro.circuit.flatten import CompiledCircuit
from repro.errors import ExperimentError, ReproError
from repro.faults.registry import FaultModel, fault_model
from repro.flow.cache import ArtifactCache, stage_key
from repro.flow.config import CircuitSpec, FlowConfig
from repro.flow import serialize
from repro.resilience import context as resilience_context
from repro.telemetry import get_registry, span


@dataclass(frozen=True)
class StageInfo:
    """Provenance of one stage result within a flow run."""

    stage: str
    key: str
    source: str  # "computed" | "cache" | "memory"
    seconds: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the CLI's ``stages`` array entries)."""
        return {
            "stage": self.stage,
            "key": self.key,
            "source": self.source,
            "seconds": round(self.seconds, 6),
        }


@dataclass
class FlowResult:
    """Everything one end-to-end flow run produced, plus provenance."""

    config: FlowConfig
    circuit: CompiledCircuit
    faults: list
    selection: USelection
    adi: AdiResult
    order_name: str
    permutation: List[int]
    tests: Any
    report: CurveReport
    stages: List[StageInfo] = field(default_factory=list)
    #: Absorbed-failure summary from the run's resilience context
    #: (``{"degraded": bool, "retries": int, "degradations": int}``);
    #: ``degraded=True`` means some component fell back to a slower but
    #: bit-identical path (e.g. the sharded engine degrading to inline).
    resilience: Dict[str, Any] = field(default_factory=dict)

    def timings(self) -> Dict[str, Any]:
        """Per-stage durations and cache attribution of this run.

        The ``timings`` key of :meth:`summary` (and of every flow-server
        response document): one entry per stage carrying the same
        duration the telemetry span measured, plus aggregate cache
        hit/miss counts (``hits`` — stages served from the artifact
        cache, ``misses`` — stages actually computed; in-memory repeats
        are neither).
        """
        stages = {
            info.stage: {"seconds": round(info.seconds, 6),
                         "source": info.source}
            for info in self.stages
        }
        return {
            "stages": stages,
            "total_seconds": round(
                sum(info.seconds for info in self.stages), 6),
            "cache": {
                "hits": sum(1 for info in self.stages
                            if info.source == "cache"),
                "misses": sum(1 for info in self.stages
                              if info.source == "computed"),
            },
        }

    def summary(self) -> Dict[str, Any]:
        """The stable JSON document ``repro run --json`` emits."""
        lo, hi = self.adi.adi_min_max()
        return {
            "schema": "repro.flow/v1",
            "config": self.config.to_dict(),
            "circuit": {
                "name": self.circuit.name,
                "inputs": self.circuit.num_inputs,
                "outputs": self.circuit.num_outputs,
                "gates": self.circuit.num_gates,
            },
            "faults": {
                "model": self.config.fault_model.name,
                "count": len(self.faults),
            },
            "u": {
                "num_vectors": self.selection.num_vectors,
                "coverage": self.selection.coverage,
                "candidates_drawn": self.selection.candidates_drawn,
            },
            "adi": {"min": lo, "max": hi, "ratio": self.adi.adi_ratio()},
            "order": {"name": self.order_name},
            "tests": {
                "count": self.tests.num_tests,
                "coverage": self.tests.fault_coverage(),
                "podem_calls": self.tests.podem_calls,
                "backtracks": self.tests.backtracks,
            },
            "curve": {
                "ave": self.report.ave,
                "num_detected": self.report.num_detected,
                "total_faults": self.report.total_faults,
            },
            "stages": [info.to_dict() for info in self.stages],
            "timings": self.timings(),
            "resilience": self.resilience or resilience_context.baseline_summary(),
        }


def build_circuit_from_spec(spec: CircuitSpec) -> CompiledCircuit:
    """Materialize a :class:`~repro.flow.config.CircuitSpec`.

    ``suite`` circuits go through the benchmark suite's own on-disk
    netlist cache (imported lazily — the suite is experiment *data*, not
    a layer above); ``bench`` parses a netlist file; ``generator``
    synthesizes deterministically from the spec's parameters.
    """
    spec.validate()
    if spec.kind == "suite":
        from repro.experiments.suite import build_circuit

        return build_circuit(spec.name)
    if spec.kind == "bench":
        from pathlib import Path

        from repro.circuit.bench import parse_bench
        from repro.circuit.flatten import compile_circuit

        return compile_circuit(parse_bench(Path(spec.path), name=spec.name))
    from repro.circuit.generator import GeneratorSpec, generate_circuit

    return generate_circuit(GeneratorSpec(
        name=spec.name,
        num_inputs=spec.num_inputs,
        num_gates=spec.num_gates,
        num_outputs=spec.num_outputs,
        seed=spec.gen_seed,
        hardness=spec.hardness,
        locality=spec.locality,
    ))


def _circuit_fingerprint(spec: CircuitSpec) -> Dict[str, Any]:
    """The JSON-ready content identity of a circuit spec.

    For ``bench`` circuits the *file content* is hashed in, so editing
    the netlist invalidates every downstream artifact even though the
    path is unchanged.
    """
    import dataclasses

    fingerprint = dataclasses.asdict(spec)
    if spec.kind == "bench" and spec.path:
        import hashlib
        from pathlib import Path

        fingerprint["content_sha256"] = hashlib.sha256(
            Path(spec.path).read_bytes()
        ).hexdigest()
    if spec.kind == "suite":
        from repro.experiments import suite

        fingerprint["suite_algo_version"] = suite._ALGO_VERSION
    return fingerprint


class Flow:
    """One configured pipeline run: staged, memoized, content-addressed.

    ``cache`` is an :class:`~repro.flow.cache.ArtifactCache`, a cache
    root path, or ``None`` for in-memory memoization only (stage results
    then live exactly as long as the Flow).
    """

    def __init__(self, config: FlowConfig,
                 cache: Union[ArtifactCache, str, None] = None,
                 observer=None):
        config.validate()
        self.config = config
        if cache is None or isinstance(cache, ArtifactCache):
            self.cache = cache
        else:
            self.cache = ArtifactCache(cache)
        self._model: FaultModel = fault_model(config.fault_model.name)
        self._memo: Dict[str, Any] = {}
        self._keys: Dict[str, str] = {}
        self.stage_log: Dict[str, StageInfo] = {}
        #: Called with each StageInfo as the stage finishes — the hook
        #: the flow server's progress stream feeds from.  Observer
        #: failures (e.g. a disconnected stream consumer) never abort
        #: the pipeline.
        self.observer = observer

    # -- internals -----------------------------------------------------------

    def _record(self, name: str, key: str, source: str,
                seconds: float) -> None:
        info = StageInfo(stage=name, key=key, source=source, seconds=seconds)
        self.stage_log[name] = info
        if self.observer is not None:
            try:
                self.observer(info)
            except Exception:
                pass

    def _stage(self, name: str, directory: str, key: str, compute,
               encode=None, decode=None):
        """Run one stage through memo → disk cache → compute.

        ``encode``/``decode`` translate between the stage's in-memory
        artifact and its JSON payload; stages without them (the circuit)
        are memo-only.
        """
        if name in self._memo:
            return self._memo[name]
        started = time.perf_counter()
        value = None
        source = "computed"
        with span(f"flow.{directory}", stage=name, key=key[:12]) as stage_span:
            if self.cache is not None and decode is not None:
                payload = self.cache.get(directory, key)
                if payload is not None:
                    try:
                        value = decode(payload)
                        source = "cache"
                    except (ReproError, KeyError, TypeError, ValueError):
                        # Artifact deserialized but failed validation (e.g. a
                        # stale or hand-edited file): delete it and recompute
                        # (put is put-if-absent, so the stale file must go
                        # before the recomputed artifact can land).
                        self.cache.delete(directory, key)
                        value = None
            if value is None:
                value = compute()
                if self.cache is not None and encode is not None:
                    self.cache.put(directory, key, encode(value))
        self._memo[name] = value
        # The span's own clock is the stage's recorded duration, so the
        # trace tree, the registry histogram and StageInfo agree exactly;
        # perf_counter is the fallback with telemetry off.
        seconds = (stage_span.seconds if stage_span.seconds is not None
                   else time.perf_counter() - started)
        get_registry().histogram(
            "repro_flow_stage_seconds",
            "Flow stage wall time by stage and result source.",
        ).labels(stage=directory, source=source).observe(seconds)
        self._record(name, key, source, seconds)
        return value

    def _cached_key(self, name: str, build) -> str:
        """Memoize stage keys: the upstream chain (which for ``bench``
        circuits re-reads and re-hashes the netlist) is walked once."""
        if name not in self._keys:
            self._keys[name] = build()
        return self._keys[name]

    def _order_name(self, order: Optional[str]) -> str:
        name = order if order is not None else self.config.order.name
        if name not in ORDERS:
            raise ExperimentError(
                f"unknown order {name!r}; available: {sorted(ORDERS)}"
            )
        return name

    # -- stage keys ----------------------------------------------------------

    def circuit_key(self) -> str:
        """Content address of the circuit stage."""
        return self._cached_key("circuit", lambda: stage_key(
            "circuit", _circuit_fingerprint(self.config.circuit)
        ))

    def faults_key(self) -> str:
        """Content address of the target fault list."""
        import dataclasses

        return self._cached_key("faults", lambda: stage_key(
            "faults", dataclasses.asdict(self.config.fault_model),
            [self.circuit_key()],
        ))

    def u_key(self) -> str:
        """Content address of the ``U`` selection."""
        import dataclasses

        def build() -> str:
            part = dataclasses.asdict(self.config.u)
            part["seed"] = self.config.seed
            return stage_key(
                "u", part, [self.circuit_key(), self.faults_key()]
            )

        return self._cached_key("u", build)

    def adi_key(self) -> str:
        """Content address of the ADI computation."""
        import dataclasses

        return self._cached_key("adi", lambda: stage_key(
            "adi", dataclasses.asdict(self.config.adi),
            [self.u_key(), self.faults_key()],
        ))

    def order_key(self, order: Optional[str] = None) -> str:
        """Content address of one order's permutation."""
        name = self._order_name(order)
        return self._cached_key(f"order:{name}", lambda: stage_key(
            "order", {"name": name}, [self.adi_key()]
        ))

    def testgen_key(self, order: Optional[str] = None) -> str:
        """Content address of one order's generated test set."""
        import dataclasses

        name = self._order_name(order)

        def build() -> str:
            part = dataclasses.asdict(self.config.testgen)
            part["seed"] = self.config.seed
            return stage_key("testgen", part, [self.order_key(name)])

        return self._cached_key(f"testgen:{name}", build)

    def report_key(self, order: Optional[str] = None) -> str:
        """Content address of one order's coverage-curve report."""
        name = self._order_name(order)
        return self._cached_key(f"curve:{name}", lambda: stage_key(
            "curve", {}, [self.testgen_key(name), self.faults_key()]
        ))

    def run_key(self, order: Optional[str] = None) -> str:
        """Content address of a whole :meth:`run` for one order.

        The final stage's key already chains every semantic knob (and,
        for ``bench`` circuits, the netlist file content) while — like
        all stage keys — excluding the backend spec, which affects speed
        but never results.  This is the key the flow server dedupes
        concurrent identical requests on: two configs that would compute
        identical results share one key.
        """
        return self.report_key(order)

    # -- pipeline stages ------------------------------------------------------

    def circuit(self) -> CompiledCircuit:
        """The compiled circuit (memoized; suite circuits disk-cached
        by the suite itself)."""
        return self._stage(
            "circuit", "circuit", self.circuit_key(),
            lambda: build_circuit_from_spec(self.config.circuit),
        )

    def faults(self) -> list:
        """The target fault list ``F`` (collapsed unless configured off)."""
        return self._stage(
            "faults", "faults", self.faults_key(),
            lambda: self._model.target_faults(
                self.circuit(), collapse=self.config.fault_model.collapse
            ),
            encode=lambda faults: serialize.faults_to_json(
                self._model, faults
            ),
            decode=serialize.faults_from_json,
        )

    def selection(self) -> USelection:
        """The selected vector set ``U`` (paper Section 4)."""
        def compute() -> USelection:
            return select_u(
                self.circuit(), self.faults(),
                seed=self.config.seed,
                max_vectors=self.config.u.max_vectors,
                target_coverage=self.config.u.target_coverage,
                chunk_size=self.config.u.chunk_size,
                prune_useless=self.config.u.prune_useless,
                backend=self.config.backend.fsim_spec(),
                model=self._model,
            )

        return self._stage(
            "u", "u", self.u_key(), compute,
            encode=lambda sel: serialize.selection_to_json(
                sel, self.faults()
            ),
            decode=lambda payload: serialize.selection_from_json(
                payload, self.faults()
            ),
        )

    def adi(self) -> AdiResult:
        """The accidental detection indices over ``U`` (paper Section 2)."""
        def compute() -> AdiResult:
            return compute_adi(
                self.circuit(), self.faults(), self.selection().patterns,
                mode=self.config.adi.to_mode(),
                backend=self.config.backend.fsim_spec(),
            )

        return self._stage(
            "adi", "adi", self.adi_key(), compute,
            encode=serialize.adi_to_json,
            decode=lambda payload: serialize.adi_from_json(
                payload, tuple(self.faults())
            ),
        )

    def permutation(self, order: Optional[str] = None) -> List[int]:
        """The permutation a named order induces (default: config's order)."""
        name = self._order_name(order)
        return self._stage(
            f"order:{name}", "order", self.order_key(name),
            lambda: list(ORDERS[name](self.adi())),
            encode=lambda perm: {"permutation": perm},
            decode=lambda payload: [int(i) for i in payload["permutation"]],
        )

    def ordered_faults(self, order: Optional[str] = None) -> list:
        """The target list in the chosen order — the ATPG's input."""
        faults = self.faults()
        return [faults[i] for i in self.permutation(order)]

    def tests(self, order: Optional[str] = None):
        """Ordered fault-dropping test generation for one order.

        Returns the model's result type
        (:class:`repro.atpg.engine.TestGenResult` or
        :class:`repro.atpg.transition.TransitionTestGenResult`).
        """
        name = self._order_name(order)

        def compute():
            return self._model.testgen(
                self.circuit(), self.ordered_faults(name),
                self.config.testgen_config(),
            )

        return self._stage(
            f"testgen:{name}", "testgen", self.testgen_key(name), compute,
            encode=lambda result: serialize.testgen_to_json(
                self._model, result
            ),
            decode=serialize.testgen_from_json,
        )

    def report(self, order: Optional[str] = None) -> CurveReport:
        """Coverage-curve report of one order's generated test set."""
        name = self._order_name(order)

        def compute() -> CurveReport:
            return curve_report(
                self.circuit(), self.faults(), self.tests(name).tests,
                backend=self.config.backend.fsim_spec(),
            )

        return self._stage(
            f"curve:{name}", "curve", self.report_key(name), compute,
            encode=serialize.curve_to_json,
            decode=serialize.curve_from_json,
        )

    # -- end-to-end ----------------------------------------------------------

    def run(self, order: Optional[str] = None) -> FlowResult:
        """Run every stage for one order and return the full result."""
        name = self._order_name(order)
        with resilience_context.collecting() as events:
            result = FlowResult(
                config=self.config,
                circuit=self.circuit(),
                faults=list(self.faults()),
                selection=self.selection(),
                adi=self.adi(),
                order_name=name,
                permutation=self.permutation(name),
                tests=self.tests(name),
                report=self.report(name),
            )
        result.resilience = events.summary()
        # Only THIS run's stages: the shared upstream plus this order's
        # own entries — a Flow may have served other orders before.
        shared = {"circuit", "faults", "u", "adi"}
        relevant = [
            info for stage, info in self.stage_log.items()
            if stage in shared or stage.endswith(f":{name}")
        ]
        result.stages = sorted(
            relevant,
            key=lambda info: _STAGE_RANK.get(info.stage.split(":")[0], 99),
        )
        return result


#: Presentation order of stages in run summaries.
_STAGE_RANK = {
    "circuit": 0, "faults": 1, "u": 2, "adi": 3,
    "order": 4, "testgen": 5, "curve": 6,
}


def run_flow(config: FlowConfig,
             cache: Union[ArtifactCache, str, None] = None) -> FlowResult:
    """One-shot convenience: build a :class:`Flow` and run it."""
    return Flow(config, cache=cache).run()
