"""The stable public flow API: declarative configs, one pipeline object.

This package is the versioned facade over the whole ADI pipeline::

    from repro.flow import Flow, FlowConfig, CircuitSpec, OrderSpec

    config = FlowConfig(
        circuit=CircuitSpec(kind="suite", name="irs208"),
        order=OrderSpec(name="0dynm"),
        seed=2005,
    )
    result = Flow(config, cache="results/cache").run()
    print(result.tests.num_tests, result.report.ave)

Pieces:

* :mod:`repro.flow.config` — the frozen, JSON-round-trippable
  :class:`FlowConfig` dataclass tree (one spec per pipeline stage);
* :mod:`repro.flow.flow` — the staged, memoizing :class:`Flow` facade,
  dispatching through the fault-model registry
  (:mod:`repro.faults.registry`);
* :mod:`repro.flow.cache` — the content-addressed
  :class:`ArtifactCache` that makes warm re-runs skip every stage;
* :mod:`repro.flow.serialize` — JSON codecs for every stage artifact;
* :mod:`repro.flow.server` — the concurrent flow HTTP service
  (``repro serve``), with single-flight request dedupe
  (:mod:`repro.flow.dedupe`);
* :mod:`repro.flow.cli` — the ``repro`` command-line entry point
  (``python -m repro``).
"""

from repro.flow.cache import (
    ArtifactCache,
    CACHE_FORMAT_VERSION,
    default_cache_root,
    stable_hash,
    stage_key,
)
from repro.flow.config import (
    AdiSpec,
    BackendSpec,
    CONFIG_VERSION,
    CircuitSpec,
    FaultModelSpec,
    FlowConfig,
    OrderSpec,
    TestGenSpec,
    USpec,
)
from repro.flow.dedupe import InflightTable
from repro.flow.flow import (
    Flow,
    FlowResult,
    StageInfo,
    build_circuit_from_spec,
    run_flow,
)
from repro.flow.server import FlowServer

__all__ = [
    "AdiSpec",
    "ArtifactCache",
    "BackendSpec",
    "CACHE_FORMAT_VERSION",
    "CONFIG_VERSION",
    "CircuitSpec",
    "FaultModelSpec",
    "Flow",
    "FlowConfig",
    "FlowResult",
    "FlowServer",
    "InflightTable",
    "OrderSpec",
    "StageInfo",
    "TestGenSpec",
    "USpec",
    "build_circuit_from_spec",
    "default_cache_root",
    "run_flow",
    "stable_hash",
    "stage_key",
]
