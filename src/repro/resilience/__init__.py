"""Resilience layer: deterministic chaos injection and supervised recovery.

Three small pieces, used together across the fsim/cache/server stack:

:mod:`repro.resilience.chaos`
    Named, seeded fault-injection sites armed by ``REPRO_CHAOS`` or a
    programmatic :class:`ChaosPlan`; off-path cost is a single branch.
:mod:`repro.resilience.supervisor`
    :class:`RetryPolicy` — attempts, per-attempt deadline, backoff, and
    the degrade-or-raise decision — consumed by the sharded engine.
:mod:`repro.resilience.context`
    :func:`record` routes every absorbed failure to telemetry counters,
    a structured log line, and the thread-local context a ``Flow.run``
    wraps around itself so ``summary()`` can report ``degraded=True``.
:mod:`repro.resilience.deadline`
    Monotonic :class:`Deadline` arithmetic for request budgets.
"""

from repro.resilience.chaos import (
    CHAOS_ENV_VAR,
    SITES,
    ChaosConfigError,
    ChaosInjected,
    ChaosPlan,
    SiteSpec,
    active_plan,
    chaos_plan,
    fire,
    install_plan,
    param,
    reload_from_env,
)
from repro.resilience.context import (
    ResilienceContext,
    ResilienceEvent,
    baseline_summary,
    collecting,
    current,
    record,
)
from repro.resilience.deadline import Deadline, remaining_timeout
from repro.resilience.supervisor import PolicyConfigError, RetryPolicy

__all__ = [
    "CHAOS_ENV_VAR",
    "SITES",
    "ChaosConfigError",
    "ChaosInjected",
    "ChaosPlan",
    "SiteSpec",
    "active_plan",
    "chaos_plan",
    "fire",
    "install_plan",
    "param",
    "reload_from_env",
    "ResilienceContext",
    "ResilienceEvent",
    "baseline_summary",
    "collecting",
    "current",
    "record",
    "Deadline",
    "remaining_timeout",
    "PolicyConfigError",
    "RetryPolicy",
]
