"""Retry/degrade policy for supervised components.

Infrastructure role: the decision table consulted by
:class:`repro.fsim.sharded.ShardedFaultSim` when a shard map fails or
times out.  A :class:`RetryPolicy` is a frozen value object — how many
attempts, how long each shard map may run, how the backoff grows, and
whether exhausting retries degrades to the inline engine or raises.

Environment knobs (read by :meth:`RetryPolicy.from_env`, which is the
default policy for every engine that is not given one explicitly):

``REPRO_FSIM_SHARD_TIMEOUT``
    Per-attempt deadline in seconds for one sharded map.  ``0`` or
    ``none`` disables the deadline (wait forever, the pre-resilience
    behaviour).  Default: 300.
``REPRO_FSIM_SHARD_RETRIES``
    How many retries *after* the first attempt.  Default: 2
    (three attempts total).  ``0`` fails fast.
``REPRO_FSIM_SHARD_BACKOFF``
    Base sleep in seconds before the first retry; doubles per retry.
    Default: 0.05.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import ResilienceError

SHARD_TIMEOUT_ENV_VAR = "REPRO_FSIM_SHARD_TIMEOUT"
SHARD_RETRIES_ENV_VAR = "REPRO_FSIM_SHARD_RETRIES"
SHARD_BACKOFF_ENV_VAR = "REPRO_FSIM_SHARD_BACKOFF"

DEFAULT_SHARD_TIMEOUT = 300.0
DEFAULT_RETRIES = 2
DEFAULT_BACKOFF = 0.05


class PolicyConfigError(ResilienceError):
    """A retry-policy environment knob failed to parse."""


@dataclass(frozen=True)
class RetryPolicy:
    """How a supervised operation retries, backs off, and degrades."""

    #: Total attempts (first try included).  Must be >= 1.
    max_attempts: int = DEFAULT_RETRIES + 1
    #: Sleep before the first retry; multiplied by ``backoff_factor``
    #: for each subsequent retry.
    backoff_seconds: float = DEFAULT_BACKOFF
    backoff_factor: float = 2.0
    #: Per-attempt deadline in seconds; ``None`` waits forever.
    shard_timeout: Optional[float] = DEFAULT_SHARD_TIMEOUT
    #: After the final attempt fails: fall back to the degraded path
    #: (``True``) or raise the last error (``False``).
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise PolicyConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.backoff_seconds < 0 or self.backoff_factor < 1.0:
            raise PolicyConfigError(
                f"bad backoff: seconds={self.backoff_seconds!r} "
                f"factor={self.backoff_factor!r}")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise PolicyConfigError(
                f"shard_timeout must be positive or None, "
                f"got {self.shard_timeout!r}")

    def backoff(self, retry_index: int) -> float:
        """Sleep before retry ``retry_index`` (0 = first retry)."""
        return self.backoff_seconds * (self.backoff_factor ** retry_index)

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """The default policy, with env-var overrides applied."""
        timeout: Optional[float] = DEFAULT_SHARD_TIMEOUT
        raw = os.environ.get(SHARD_TIMEOUT_ENV_VAR, "").strip()
        if raw:
            if raw.lower() in ("none", "off"):
                timeout = None
            else:
                try:
                    timeout = float(raw)
                except ValueError:
                    raise PolicyConfigError(
                        f"{SHARD_TIMEOUT_ENV_VAR}={raw!r} is not a float") from None
                if timeout <= 0:
                    timeout = None
        retries = DEFAULT_RETRIES
        raw = os.environ.get(SHARD_RETRIES_ENV_VAR, "").strip()
        if raw:
            try:
                retries = int(raw)
            except ValueError:
                raise PolicyConfigError(
                    f"{SHARD_RETRIES_ENV_VAR}={raw!r} is not an integer") from None
            if retries < 0:
                raise PolicyConfigError(
                    f"{SHARD_RETRIES_ENV_VAR} must be >= 0, got {retries}")
        backoff = DEFAULT_BACKOFF
        raw = os.environ.get(SHARD_BACKOFF_ENV_VAR, "").strip()
        if raw:
            try:
                backoff = float(raw)
            except ValueError:
                raise PolicyConfigError(
                    f"{SHARD_BACKOFF_ENV_VAR}={raw!r} is not a float") from None
            if backoff < 0:
                raise PolicyConfigError(
                    f"{SHARD_BACKOFF_ENV_VAR} must be >= 0, got {backoff}")
        return cls(max_attempts=retries + 1, backoff_seconds=backoff,
                   shard_timeout=timeout)

    @classmethod
    def fail_fast(cls) -> "RetryPolicy":
        """No retries, no degradation: the pre-resilience semantics."""
        return cls(max_attempts=1, shard_timeout=None, degrade=False)
