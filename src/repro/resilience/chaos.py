"""Deterministic, seeded fault injection behind a single-branch gate.

Infrastructure role: the "chaos" half of the resilience layer.  A
:class:`ChaosPlan` arms a set of *named injection sites* — fixed points
in the production code (shard workers, the cache write path, the server
handler) that ask :func:`fire` whether a failure should be injected
right now.  With no plan installed the hot path is one module-global
``None`` check, so production cost is ~zero; with a plan installed each
armed site draws from its **own** seeded :class:`random.Random` stream,
so a given ``REPRO_CHAOS`` spec reproduces the exact same failure
sequence on every run regardless of thread/process interleaving of the
*other* sites.

Activation is either programmatic::

    with chaos_plan(ChaosPlan({"shard.worker.crash": 1.0})):
        engine.detection_matrix(faults)      # every shard map crashes

or via the environment (read once at import; :func:`reload_from_env`
re-reads)::

    REPRO_CHAOS="shard.worker.crash:0.25:1234,cache.write.enospc:1.0"

Spec grammar: comma-separated ``site:prob[:seed[:max_fires]]`` entries.
``max_fires`` caps how many times a site triggers — ``:1`` turns a
crash site into "fail once, then recover", the shape retry logic is
meant to absorb.

Each actual injection increments ``repro_resilience_injections_total``
on the ambient (thread-scoped) telemetry registry, so firings inside
shard worker processes ride home in the shard snapshot merge.
"""

from __future__ import annotations

import hashlib
import os
import random
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Mapping, Optional, Union

from repro.errors import ResilienceError
from repro.telemetry import get_registry

#: Environment variable holding the injection spec.
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Counter family bumped once per actual injection, labelled by site.
INJECTIONS_METRIC = "repro_resilience_injections_total"

#: The registry of legal injection sites.  ``fire()`` on a name outside
#: this table raises — a typo in a hook or a plan should fail loudly,
#: not silently never trigger.
SITES: Dict[str, str] = {
    "shard.worker.crash": "raise inside a shard worker before it simulates (simulated crash)",
    "shard.worker.hang": "sleep inside a shard worker past the shard deadline (param: seconds)",
    "cache.write.enospc": "raise OSError(ENOSPC) at the top of the artifact-cache write path",
    "cache.read.corrupt": "truncate artifact text after read, exercising corrupt-entry recovery",
    "server.handler.slow": "sleep in the flow server's leader compute path (param: seconds)",
}


class ChaosConfigError(ResilienceError):
    """A chaos spec or plan references an unknown site or bad value."""


class ChaosInjected(ResilienceError):
    """The error raised *by* an injection site that simulates a crash."""


def _default_seed(site: str) -> int:
    """A stable per-site seed so unspecified seeds are still reproducible."""
    return int(hashlib.sha256(site.encode("utf-8")).hexdigest()[:8], 16)


class SiteSpec:
    """One armed site: probability, seed, optional fire cap and params."""

    __slots__ = ("name", "probability", "seed", "max_fires", "params")

    def __init__(self, name: str, probability: float, *,
                 seed: Optional[int] = None,
                 max_fires: Optional[int] = None,
                 params: Optional[Mapping[str, Any]] = None) -> None:
        if name not in SITES:
            known = ", ".join(sorted(SITES))
            raise ChaosConfigError(
                f"unknown chaos site {name!r}; known sites: {known}")
        probability = float(probability)
        if not 0.0 <= probability <= 1.0:
            raise ChaosConfigError(
                f"chaos site {name!r}: probability must be in [0, 1], "
                f"got {probability!r}")
        if max_fires is not None and max_fires < 1:
            raise ChaosConfigError(
                f"chaos site {name!r}: max_fires must be >= 1, "
                f"got {max_fires!r}")
        self.name = name
        self.probability = probability
        self.seed = _default_seed(name) if seed is None else int(seed)
        self.max_fires = max_fires
        self.params = dict(params or {})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SiteSpec({self.name!r}, {self.probability!r}, "
                f"seed={self.seed!r}, max_fires={self.max_fires!r})")


class _SiteState:
    """Runtime state for one armed site: its RNG stream and fire count."""

    __slots__ = ("spec", "rng", "fires", "lock")

    def __init__(self, spec: SiteSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.fires = 0
        self.lock = threading.Lock()

    def draw(self) -> bool:
        with self.lock:
            if self.spec.max_fires is not None and self.fires >= self.spec.max_fires:
                return False
            if self.spec.probability <= 0.0:
                return False
            if self.spec.probability < 1.0 and self.rng.random() >= self.spec.probability:
                return False
            self.fires += 1
            return True


class ChaosPlan:
    """A set of armed injection sites with deterministic firing streams.

    Accepts a mapping of site name to probability (floats) or to a full
    :class:`SiteSpec` for seeds / fire caps / params.
    """

    def __init__(self, sites: Mapping[str, Union[float, SiteSpec]]) -> None:
        self._states: Dict[str, _SiteState] = {}
        for name, value in sites.items():
            spec = value if isinstance(value, SiteSpec) else SiteSpec(name, value)
            if spec.name != name:
                raise ChaosConfigError(
                    f"plan key {name!r} disagrees with spec name {spec.name!r}")
            self._states[name] = _SiteState(spec)

    @classmethod
    def from_spec(cls, text: str) -> "ChaosPlan":
        """Parse the ``REPRO_CHAOS`` grammar: ``site:prob[:seed[:max_fires]],...``."""
        sites: Dict[str, SiteSpec] = {}
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            fields = chunk.split(":")
            if len(fields) < 2 or len(fields) > 4:
                raise ChaosConfigError(
                    f"bad {CHAOS_ENV_VAR} entry {chunk!r}: expected "
                    "site:prob[:seed[:max_fires]]")
            name = fields[0].strip()
            try:
                probability = float(fields[1])
            except ValueError:
                raise ChaosConfigError(
                    f"bad {CHAOS_ENV_VAR} entry {chunk!r}: probability "
                    f"{fields[1]!r} is not a float") from None
            seed: Optional[int] = None
            max_fires: Optional[int] = None
            try:
                if len(fields) >= 3 and fields[2].strip():
                    seed = int(fields[2])
                if len(fields) == 4 and fields[3].strip():
                    max_fires = int(fields[3])
            except ValueError:
                raise ChaosConfigError(
                    f"bad {CHAOS_ENV_VAR} entry {chunk!r}: seed and "
                    "max_fires must be integers") from None
            if name in sites:
                raise ChaosConfigError(
                    f"duplicate {CHAOS_ENV_VAR} site {name!r}")
            sites[name] = SiteSpec(name, probability, seed=seed,
                                   max_fires=max_fires)
        if not sites:
            raise ChaosConfigError(
                f"{CHAOS_ENV_VAR} spec {text!r} armed no sites")
        return cls(sites)

    def to_spec(self) -> str:
        """Render back to the env grammar (params are not representable)."""
        parts = []
        for name in sorted(self._states):
            spec = self._states[name].spec
            entry = f"{name}:{spec.probability:g}:{spec.seed}"
            if spec.max_fires is not None:
                entry += f":{spec.max_fires}"
            parts.append(entry)
        return ",".join(parts)

    def sites(self) -> Dict[str, SiteSpec]:
        return {name: state.spec for name, state in self._states.items()}

    def fire(self, site: str, **detail: Any) -> bool:
        if site not in SITES:
            known = ", ".join(sorted(SITES))
            raise ChaosConfigError(
                f"unknown chaos site {site!r}; known sites: {known}")
        state = self._states.get(site)
        if state is None or not state.draw():
            return False
        counter = get_registry().counter(
            INJECTIONS_METRIC,
            "Chaos injections actually fired, by site.")
        counter.labels(site=site).inc()
        return True

    def param(self, site: str, key: str, default: Any = None) -> Any:
        state = self._states.get(site)
        if state is None:
            return default
        return state.spec.params.get(key, default)

    def fires(self, site: str) -> int:
        """How many times ``site`` has actually fired under this plan."""
        state = self._states.get(site)
        return 0 if state is None else state.fires


def _load_env_plan() -> Optional[ChaosPlan]:
    spec = os.environ.get(CHAOS_ENV_VAR, "").strip()
    if not spec:
        return None
    return ChaosPlan.from_spec(spec)


#: The installed plan.  ``None`` (the default) makes every ``fire()``
#: call a single attribute load plus an ``is None`` check.
_plan: Optional[ChaosPlan] = _load_env_plan()


def active_plan() -> Optional[ChaosPlan]:
    """The currently installed plan, or ``None``."""
    return _plan


def install_plan(plan: Optional[ChaosPlan]) -> Optional[ChaosPlan]:
    """Install ``plan`` process-wide; returns the previous plan."""
    global _plan
    previous = _plan
    _plan = plan
    return previous


def reload_from_env() -> Optional[ChaosPlan]:
    """Re-read ``REPRO_CHAOS`` and install the result (or ``None``)."""
    return install_plan(_load_env_plan())


@contextmanager
def chaos_plan(plan: Optional[ChaosPlan]) -> Iterator[Optional[ChaosPlan]]:
    """Temporarily install ``plan``, restoring the previous one on exit."""
    previous = install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


def fire(site: str, **detail: Any) -> bool:
    """Should ``site`` inject a failure right now?

    The production fast path: with no plan installed this is one global
    read and one ``is None`` branch.
    """
    plan = _plan
    if plan is None:
        return False
    return plan.fire(site, **detail)


def param(site: str, key: str, default: Any = None) -> Any:
    """A per-site tuning knob (e.g. hang duration) from the active plan."""
    plan = _plan
    if plan is None:
        return default
    return plan.param(site, key, default)
