"""Thread-local collection of resilience events plus global counters.

Infrastructure role: the reporting half of the resilience layer.  When
a supervised component absorbs a failure — a shard retry, a degrade to
the inline engine, a request shed at admission — it calls
:func:`record`.  That single call does three things:

* bumps the matching ``repro_resilience_*`` counter on the ambient
  telemetry registry (so ``GET /metrics`` sees it),
* emits one structured log line via :func:`repro.telemetry.log_event`,
* appends the event to the innermost active :class:`ResilienceContext`,
  if any, so :meth:`repro.flow.flow.FlowResult.summary` can surface
  ``degraded=True`` for the specific run that degraded.

Contexts are thread-local and nest like a stack; ``Flow.run`` wraps
each run in :func:`collecting` so events land on the run that caused
them even when several runs execute concurrently in one server.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.telemetry import get_registry, log_event

#: Counter families, all rendered by the flow server's ``GET /metrics``.
RETRIES_METRIC = "repro_resilience_retries_total"
DEGRADATIONS_METRIC = "repro_resilience_degradations_total"
SHED_METRIC = "repro_resilience_shed_total"

#: Recognised event kinds and the counter/label each maps to.
_KINDS = {"retry", "degradation", "shed", "timeout"}


class ResilienceEvent:
    """One absorbed failure: what kind, which component, free detail."""

    __slots__ = ("kind", "component", "detail")

    def __init__(self, kind: str, component: str, detail: Dict[str, Any]) -> None:
        self.kind = kind
        self.component = component
        self.detail = detail

    def to_dict(self) -> Dict[str, Any]:
        doc = {"kind": self.kind, "component": self.component}
        doc.update(self.detail)
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResilienceEvent({self.kind!r}, {self.component!r}, {self.detail!r})"


class ResilienceContext:
    """An append-only list of events scoped to one logical operation."""

    def __init__(self) -> None:
        self.events: List[ResilienceEvent] = []
        self._lock = threading.Lock()

    def add(self, event: ResilienceEvent) -> None:
        with self._lock:
            self.events.append(event)

    @property
    def retries(self) -> int:
        return sum(1 for e in self.events if e.kind == "retry")

    @property
    def degradations(self) -> int:
        return sum(1 for e in self.events if e.kind == "degradation")

    @property
    def degraded(self) -> bool:
        return self.degradations > 0

    def summary(self) -> Dict[str, Any]:
        """The stable shape embedded in ``FlowResult.summary()``."""
        return {
            "degraded": self.degraded,
            "retries": self.retries,
            "degradations": self.degradations,
        }


_local = threading.local()


def _stack() -> List[ResilienceContext]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current() -> Optional[ResilienceContext]:
    """The innermost active context on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def collecting(context: Optional[ResilienceContext] = None) -> Iterator[ResilienceContext]:
    """Push a context for the duration of the block; yields it."""
    context = context if context is not None else ResilienceContext()
    stack = _stack()
    stack.append(context)
    try:
        yield context
    finally:
        stack.pop()


def baseline_summary() -> Dict[str, Any]:
    """The all-clear summary for runs that saw no resilience events."""
    return {"degraded": False, "retries": 0, "degradations": 0}


def record(kind: str, component: str, **detail: Any) -> None:
    """Report one absorbed failure: counter + log line + active context."""
    if kind not in _KINDS:
        raise ValueError(f"unknown resilience event kind {kind!r}")
    registry = get_registry()
    if kind == "retry":
        registry.counter(
            RETRIES_METRIC,
            "Supervised retries after an absorbed component failure.",
        ).labels(component=component).inc()
    elif kind == "degradation":
        registry.counter(
            DEGRADATIONS_METRIC,
            "Graceful degradations to a fallback path after retries ran out.",
        ).labels(component=component).inc()
    elif kind in ("shed", "timeout"):
        registry.counter(
            SHED_METRIC,
            "Requests shed or timed out instead of queueing, by reason.",
        ).labels(reason=str(detail.get("reason", component))).inc()
    log_event("resilience", level="warning", kind=kind,
              component=component, **detail)
    context = current()
    if context is not None:
        context.add(ResilienceEvent(kind, component, dict(detail)))
