"""Monotonic deadlines: one small type shared by server and supervisor.

A :class:`Deadline` is an absolute point on the monotonic clock.  The
pattern everywhere a budget must be split across sequential waits —
"wait for the in-flight computation, but only for what's left of the
request budget" — is::

    deadline = Deadline.after(server.request_timeout)   # None -> None
    ...
    entry.wait(remaining_timeout(deadline, follower_timeout))
"""

from __future__ import annotations

import time
from typing import Optional


class Deadline:
    """An absolute monotonic-clock deadline."""

    __slots__ = ("at",)

    def __init__(self, at: float) -> None:
        self.at = float(at)

    @classmethod
    def after(cls, seconds: Optional[float]) -> Optional["Deadline"]:
        """A deadline ``seconds`` from now, or ``None`` for no deadline."""
        if seconds is None:
            return None
        return cls(time.monotonic() + float(seconds))

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(in {self.remaining():.3f}s)"


def remaining_timeout(deadline: Optional[Deadline],
                      *limits: Optional[float]) -> Optional[float]:
    """The tightest of a deadline's remaining budget and fixed limits.

    Returns ``None`` only when every input is ``None`` (wait forever).
    An expired deadline clamps to ``0.0`` so waits return immediately
    rather than raising.
    """
    candidates = [limit for limit in limits if limit is not None]
    if deadline is not None:
        candidates.append(deadline.remaining())
    if not candidates:
        return None
    return max(0.0, min(candidates))
