"""Fault dominance collapsing (on top of equivalence collapsing).

Fault ``f`` *dominates* ``g`` when every test for ``g`` also detects
``f`` (``T(g) ⊆ T(f)``): ``f`` can then be dropped from the target list —
covering ``g`` covers it for free.  The classical structural rule: for a
gate with controlling value ``c``, the output stuck-at the value it takes
when *some* input is controlling... inverted — concretely,

* AND:  out s-a-1 dominates every input s-a-1;
* NAND: out s-a-0 dominates every input s-a-0... with the stuck values
  being the *non-controlled* output value (AND: 1, NAND: 0, OR: 0,
  NOR: 1);

so the output fault is dropped whenever at least one input-line fault of
the matching polarity remains targetable.  The rule is only sound when
the input fault's effect enters the circuit *through this gate alone*,
which is exactly how :mod:`repro.faults.collapse` scopes input-line
faults (branch fault when the line branches, single-consumer stem
otherwise) — so dominance composes directly with equivalence collapsing.

Dominance-collapsed target lists are smaller but change coverage
semantics (a dropped dominating fault is only *implicitly* covered);
the paper's experiments use equivalence collapsing only, and this module
exists for the ablation benchmark.

Caveat (textbook, and verified by the property tests): the coverage
guarantee "detecting every remaining target detects the whole universe"
holds for **irredundant** circuits.  In a redundant circuit a dominating
input fault can be undetectable while the dominated output fault is
detectable — no test set covers the undetectable dominator, so nothing
forces detection of the dropped fault.  Run redundancy removal first
(:func:`repro.circuit.redundancy.make_irredundant`) when the guarantee
matters.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.circuit.flatten import CompiledCircuit
from repro.circuit.gate_types import GateType, controlling_value, is_inverting
from repro.faults.collapse import CollapsedFaults, collapse_faults
from repro.faults.model import STEM, Fault
from repro.faults.universe import line_branches


def _dominated_output_value(gtype: GateType) -> int | None:
    """Stuck value of the dominated output fault for this gate type."""
    ctrl = controlling_value(gtype)
    if ctrl is None:
        return None
    controlled_output = ctrl ^ (1 if is_inverting(gtype) else 0)
    return controlled_output ^ 1


def _input_line_fault(circ: CompiledCircuit, gate: int, pin: int,
                      value: int) -> Fault:
    src = circ.fanin[gate][pin]
    if line_branches(circ, src):
        return Fault(gate, pin, value)
    return Fault(src, STEM, value)


def dominance_collapse(circ: CompiledCircuit,
                       collapsed: CollapsedFaults | None = None) -> List[Fault]:
    """Equivalence + dominance collapsed target list.

    Starts from the equivalence representatives and drops every output
    stem fault that is dominated by a still-targeted input-line fault of
    the matching polarity.  The result preserves full coverage: any test
    set detecting every returned fault detects every fault of the
    original universe.
    """
    if collapsed is None:
        collapsed = collapse_faults(circ)
    targets: Set[Fault] = set(collapsed.representatives)

    # Iterate in reverse topological order so chains of dominance
    # (out fault dominated by an input fault that is itself an output
    # fault of the previous gate) resolve in one pass.
    for gate in sorted(circ.gate_nodes(), reverse=True):
        gtype = circ.node_type[gate]
        value = _dominated_output_value(gtype)
        if value is None:
            continue
        out_fault = Fault(gate, STEM, value)
        out_rep = collapsed.class_index.get(out_fault)
        if out_rep is None:
            continue
        out_rep_fault = collapsed.representatives[out_rep]
        if out_rep_fault not in targets:
            continue
        # The dominated class must not contain anything but this output
        # fault's equivalents *observable only through this gate's
        # dominance relation*; classes merged across the gate (e.g. the
        # NOT-chain case) already guarantee equivalence, so dropping the
        # class is sound as long as some dominating input fault stays.
        ctrl = controlling_value(gtype)
        input_value = ctrl ^ 1
        dominators = []
        for pin in range(len(circ.fanin[gate])):
            in_fault = _input_line_fault(circ, gate, pin, input_value)
            class_id = collapsed.class_index.get(in_fault)
            if class_id is None:
                continue
            rep = collapsed.representatives[class_id]
            if rep in targets and rep != out_rep_fault:
                dominators.append(rep)
        if dominators:
            targets.discard(out_rep_fault)

    return [f for f in collapsed.representatives if f in targets]


def dominance_reduction(circ: CompiledCircuit) -> tuple:
    """(equivalence count, dominance count) — for reports/benchmarks."""
    collapsed = collapse_faults(circ)
    reduced = dominance_collapse(circ, collapsed)
    return len(collapsed.representatives), len(reduced)
