"""Single stuck-at fault model.

A fault site is a *line*: either the output stem of a node, or one fanout
branch (a specific input pin of a specific gate).  A :class:`Fault` is a
site plus a stuck value.  Branch faults are only distinct from their
driver's stem fault when the driver has fanout greater than one; the
universe enumerator (:mod:`repro.faults.universe`) handles that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.flatten import CompiledCircuit
from repro.errors import FaultModelError

#: Sentinel pin value meaning "the output stem of the node".
STEM = -1


@dataclass(frozen=True, order=True)
class Fault:
    """A single stuck-at fault.

    Attributes
    ----------
    node:
        Node id.  For a stem fault, the faulty line is this node's output;
        for a branch fault, the node is the *consuming gate*.
    pin:
        :data:`STEM` (-1) for a stem fault, otherwise the index into
        ``fanin[node]`` naming the faulty input branch.
    value:
        The stuck value, 0 or 1.

    Ordering is lexicographic on ``(node, pin, value)``: topological order
    of fault sites, which serves as the deterministic "original order"
    (``Forig``) of the experiments.
    """

    node: int
    pin: int
    value: int

    def __post_init__(self):
        if self.value not in (0, 1):
            raise FaultModelError(f"stuck value must be 0 or 1, got {self.value!r}")
        if self.pin < STEM:
            raise FaultModelError(f"pin must be >= -1, got {self.pin}")

    @property
    def is_stem(self) -> bool:
        """True for output-stem faults."""
        return self.pin == STEM

    @property
    def is_branch(self) -> bool:
        """True for fanout-branch (gate input pin) faults."""
        return self.pin != STEM

    def site(self) -> tuple:
        """The fault line ``(node, pin)`` without the stuck value."""
        return (self.node, self.pin)

    def describe(self, circ: CompiledCircuit) -> str:
        """Human-readable form, e.g. ``g12 s-a-0`` or ``g12.in1 s-a-1``."""
        name = circ.names[self.node]
        if self.is_stem:
            return f"{name} s-a-{self.value}"
        src = circ.names[circ.fanin[self.node][self.pin]]
        return f"{name}.in{self.pin}({src}) s-a-{self.value}"


def check_fault(circ: CompiledCircuit, fault: Fault) -> None:
    """Validate that ``fault`` names a real line of ``circ``.

    Raises :class:`FaultModelError` otherwise.
    """
    if not 0 <= fault.node < circ.num_nodes:
        raise FaultModelError(f"fault node {fault.node} out of range")
    if fault.is_branch:
        fanin = circ.fanin[fault.node]
        if not 0 <= fault.pin < len(fanin):
            raise FaultModelError(
                f"fault pin {fault.pin} out of range for node "
                f"{circ.describe_node(fault.node)} with {len(fanin)} inputs"
            )
