"""Fault models (stuck-at and transition), universes, collapsing, bookkeeping.

The fault-model *registry* (:mod:`repro.faults.registry`) is the
dispatch hub: every pipeline stage that is polymorphic over fault models
(ADI, ``U`` selection, dropping, test generation, the flow facade)
resolves its model here instead of type-checking pattern containers.
"""

from repro.faults.collapse import CollapsedFaults, collapse_faults, collapsed_fault_list
from repro.faults.dominance import dominance_collapse, dominance_reduction
from repro.faults.model import STEM, Fault, check_fault
from repro.faults.registry import (
    FaultModel,
    PatternBlock,
    available_fault_models,
    fault_model,
    model_for_block,
    query_detection_words,
    register_fault_model,
)
from repro.faults.sets import FaultSet, FaultStatus
from repro.faults.transition import (
    SLOW_TO_FALL,
    SLOW_TO_RISE,
    TransitionFault,
    check_transition_fault,
    collapse_transition_faults,
    transition_fault_list,
    transition_universe,
)
from repro.faults.universe import count_lines, full_universe, line_branches

__all__ = [
    "CollapsedFaults",
    "Fault",
    "FaultModel",
    "FaultSet",
    "FaultStatus",
    "PatternBlock",
    "SLOW_TO_FALL",
    "SLOW_TO_RISE",
    "STEM",
    "TransitionFault",
    "available_fault_models",
    "check_fault",
    "check_transition_fault",
    "collapse_faults",
    "collapse_transition_faults",
    "collapsed_fault_list",
    "count_lines",
    "dominance_collapse",
    "dominance_reduction",
    "fault_model",
    "full_universe",
    "line_branches",
    "model_for_block",
    "query_detection_words",
    "register_fault_model",
    "transition_fault_list",
    "transition_universe",
]
