"""Stuck-at fault model, universe enumeration, collapsing, bookkeeping."""

from repro.faults.collapse import CollapsedFaults, collapse_faults, collapsed_fault_list
from repro.faults.dominance import dominance_collapse, dominance_reduction
from repro.faults.model import STEM, Fault, check_fault
from repro.faults.sets import FaultSet, FaultStatus
from repro.faults.universe import count_lines, full_universe, line_branches

__all__ = [
    "CollapsedFaults",
    "Fault",
    "FaultSet",
    "FaultStatus",
    "STEM",
    "check_fault",
    "collapse_faults",
    "collapsed_fault_list",
    "count_lines",
    "dominance_collapse",
    "dominance_reduction",
    "full_universe",
    "line_branches",
]
