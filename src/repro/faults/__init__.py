"""Fault models (stuck-at and transition), universes, collapsing, bookkeeping."""

from repro.faults.collapse import CollapsedFaults, collapse_faults, collapsed_fault_list
from repro.faults.dominance import dominance_collapse, dominance_reduction
from repro.faults.model import STEM, Fault, check_fault
from repro.faults.sets import FaultSet, FaultStatus
from repro.faults.transition import (
    SLOW_TO_FALL,
    SLOW_TO_RISE,
    TransitionFault,
    check_transition_fault,
    collapse_transition_faults,
    transition_fault_list,
    transition_universe,
)
from repro.faults.universe import count_lines, full_universe, line_branches

__all__ = [
    "CollapsedFaults",
    "Fault",
    "FaultSet",
    "FaultStatus",
    "SLOW_TO_FALL",
    "SLOW_TO_RISE",
    "STEM",
    "TransitionFault",
    "check_fault",
    "check_transition_fault",
    "collapse_faults",
    "collapse_transition_faults",
    "collapsed_fault_list",
    "count_lines",
    "dominance_collapse",
    "dominance_reduction",
    "full_universe",
    "line_branches",
    "transition_fault_list",
    "transition_universe",
]
