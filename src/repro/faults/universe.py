"""Stuck-at fault universe enumeration.

The *full universe* contains two faults (s-a-0, s-a-1) per line, where the
lines are:

* the output stem of every node (primary inputs included), and
* every input pin of every gate whose driver line *branches* — because the
  driver has fanout greater than one, or because the driver is a primary
  output that additionally feeds logic (the external observation point
  counts as a fanout).  Pins fed by non-branching drivers share their
  driver's stem line, so enumerating them separately would double-count.
"""

from __future__ import annotations

from typing import List

from repro.circuit.flatten import CompiledCircuit
from repro.faults.model import STEM, Fault


def line_branches(circ: CompiledCircuit, src: int) -> bool:
    """Does the output line of ``src`` branch?

    True when the node drives more than one pin, or drives at least one
    pin *and* is itself a primary output (observed externally).
    """
    fanout = len(circ.fanout[src])
    return fanout > 1 or (fanout >= 1 and circ.is_output[src])


def full_universe(circ: CompiledCircuit) -> List[Fault]:
    """All stuck-at faults of ``circ``, in (node, pin, value) order.

    The order is deterministic and topological; the experiments use it as
    the paper's "original order" ``Forig``.
    """
    faults: List[Fault] = []
    for node in range(circ.num_nodes):
        entries: List[Fault] = []
        if circ.fanout[node] or circ.is_output[node]:
            # A node with neither fanout nor observation has no line in
            # the circuit (e.g. an unused primary input): no stem faults.
            entries.append(Fault(node, STEM, 0))
            entries.append(Fault(node, STEM, 1))
        for pin, src in enumerate(circ.fanin[node]):
            if line_branches(circ, src):
                entries.append(Fault(node, pin, 0))
                entries.append(Fault(node, pin, 1))
        entries.sort()
        faults.extend(entries)
    return faults


def count_lines(circ: CompiledCircuit) -> int:
    """Number of distinct fault lines (universe size is twice this)."""
    lines = sum(
        1 for node in range(circ.num_nodes)
        if circ.fanout[node] or circ.is_output[node]
    )
    for node in circ.gate_nodes():
        for src in circ.fanin[node]:
            if line_branches(circ, src):
                lines += 1
    return lines
