"""Fault status bookkeeping for test-generation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Sequence

from repro.errors import FaultModelError
from repro.faults.model import Fault


class FaultStatus(Enum):
    """Lifecycle of a target fault during test generation."""

    UNDETECTED = "undetected"
    DETECTED = "detected"
    UNDETECTABLE = "undetectable"
    ABORTED = "aborted"


@dataclass
class FaultSet:
    """An ordered fault list with per-fault status.

    The iteration order is the *target order* — the heart of the paper's
    heuristic.  ``FaultSet`` never reorders itself; orderings produce a
    new instance via :meth:`reordered`.
    """

    faults: List[Fault]
    status: Dict[Fault, FaultStatus] = field(default_factory=dict)

    def __post_init__(self):
        if len(set(self.faults)) != len(self.faults):
            raise FaultModelError("duplicate faults in fault set")
        for fault in self.faults:
            self.status.setdefault(fault, FaultStatus.UNDETECTED)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def mark(self, fault: Fault, status: FaultStatus) -> None:
        """Set the status of one fault."""
        if fault not in self.status:
            raise FaultModelError(f"{fault} is not in this fault set")
        self.status[fault] = status

    def of_status(self, status: FaultStatus) -> List[Fault]:
        """Faults currently in ``status``, in target order."""
        return [f for f in self.faults if self.status[f] == status]

    @property
    def undetected(self) -> List[Fault]:
        """Faults still awaiting detection, in target order."""
        return self.of_status(FaultStatus.UNDETECTED)

    @property
    def num_detected(self) -> int:
        """Count of detected faults."""
        return sum(
            1 for s in self.status.values() if s == FaultStatus.DETECTED
        )

    def coverage(self) -> float:
        """Detected fraction of the whole set (undetectables included)."""
        return self.num_detected / len(self.faults) if self.faults else 1.0

    def detectable_coverage(self) -> float:
        """Detected fraction of faults not proven undetectable."""
        detectable = [
            f for f in self.faults
            if self.status[f] != FaultStatus.UNDETECTABLE
        ]
        if not detectable:
            return 1.0
        detected = sum(
            1 for f in detectable if self.status[f] == FaultStatus.DETECTED
        )
        return detected / len(detectable)

    def reordered(self, order: Sequence[int]) -> "FaultSet":
        """New fault set with target order ``[faults[i] for i in order]``.

        ``order`` must be a permutation of ``range(len(self))``.
        """
        if sorted(order) != list(range(len(self.faults))):
            raise FaultModelError("order is not a permutation of the fault set")
        return FaultSet(
            faults=[self.faults[i] for i in order],
            status=dict(self.status),
        )
