"""Transition (delay) fault model for two-pattern scan tests.

A transition fault sits on the same *lines* as a stuck-at fault — the
output stem of a node, or one fanout branch — but models a gross delay
defect instead of a hard short: a **slow-to-rise** line fails to complete
a 0 -> 1 transition within the clock period, a **slow-to-fall** line a
1 -> 0 transition.  Detection therefore needs a *pattern pair*
``(v1, v2)``: the launch vector ``v1`` initializes the line, the capture
vector ``v2`` propagates the late value to an output.

For the combinational full-scan model the classic reduction applies
(and is what both fault-simulation backends implement):

    slow-to-rise at ``s`` is detected by ``(v1, v2)``  iff
    ``s = 0`` under ``v1``  and  ``s`` stuck-at-0 is detected by ``v2``

(dually, slow-to-fall reduces to ``s = 1`` under ``v1`` plus stuck-at-1
detection by ``v2``).  :meth:`TransitionFault.as_stuck_at` exposes the
capture-side stuck-at fault; :attr:`TransitionFault.initial_value` the
launch-side line value — note they coincide, because the slow line keeps
its initial value through the capture cycle.

Structural collapsing (:func:`collapse_transition_faults`) is more
restricted than for stuck-at faults: the AND/OR input-to-output rules are
only *dominances* here, because the launch condition differs (input pin
at the controlling value forces the output, but not vice versa).  True
equivalence survives only through single-input gates on non-branching
lines — BUF preserves the transition direction, NOT swaps it — which is
exactly what the collapser merges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.circuit.flatten import CompiledCircuit
from repro.circuit.gate_types import GateType
from repro.errors import FaultModelError
from repro.faults.collapse import CollapsedFaults, _UnionFind, gather_classes
from repro.faults.model import STEM, Fault, check_fault
from repro.faults.universe import line_branches

#: ``rise`` value of a slow-to-rise fault (the slow transition is 0 -> 1).
SLOW_TO_RISE = 1

#: ``rise`` value of a slow-to-fall fault (the slow transition is 1 -> 0).
SLOW_TO_FALL = 0


@dataclass(frozen=True, order=True)
class TransitionFault:
    """A single transition fault.

    Attributes
    ----------
    node:
        Node id.  For a stem fault, the slow line is this node's output;
        for a branch fault, the node is the *consuming gate*.
    pin:
        :data:`repro.faults.model.STEM` (-1) for a stem fault, otherwise
        the index into ``fanin[node]`` naming the slow input branch.
    rise:
        :data:`SLOW_TO_RISE` (1) or :data:`SLOW_TO_FALL` (0).

    Ordering is lexicographic on ``(node, pin, rise)`` — topological order
    of fault sites, the deterministic "original order" (``Forig``) of the
    transition experiments, mirroring :class:`repro.faults.model.Fault`.
    """

    node: int
    pin: int
    rise: int

    def __post_init__(self):
        if self.rise not in (SLOW_TO_FALL, SLOW_TO_RISE):
            raise FaultModelError(
                f"rise must be 0 (slow-to-fall) or 1 (slow-to-rise), "
                f"got {self.rise!r}"
            )
        if self.pin < STEM:
            raise FaultModelError(f"pin must be >= -1, got {self.pin}")

    @property
    def is_stem(self) -> bool:
        """True for output-stem faults."""
        return self.pin == STEM

    @property
    def is_branch(self) -> bool:
        """True for fanout-branch (gate input pin) faults."""
        return self.pin != STEM

    @property
    def initial_value(self) -> int:
        """Line value ``v1`` must establish: 0 before a rise, 1 before a fall."""
        return 0 if self.rise else 1

    def site(self) -> tuple:
        """The fault line ``(node, pin)`` without the transition direction."""
        return (self.node, self.pin)

    def as_stuck_at(self) -> Fault:
        """The stuck-at fault the slow line mimics under the capture vector.

        A slow-to-rise line stays 0, i.e. behaves as stuck-at-0 under
        ``v2``; slow-to-fall behaves as stuck-at-1.  The stuck value
        equals :attr:`initial_value` — the line is frozen at it.
        """
        return Fault(self.node, self.pin, self.initial_value)

    @staticmethod
    def from_stuck_at(fault: Fault) -> "TransitionFault":
        """Inverse of :meth:`as_stuck_at` (same site, same frozen value)."""
        return TransitionFault(fault.node, fault.pin,
                               SLOW_TO_RISE if fault.value == 0 else SLOW_TO_FALL)

    def describe(self, circ: CompiledCircuit) -> str:
        """Human-readable form, e.g. ``g12 slow-to-rise``."""
        kind = "slow-to-rise" if self.rise else "slow-to-fall"
        name = circ.names[self.node]
        if self.is_stem:
            return f"{name} {kind}"
        src = circ.names[circ.fanin[self.node][self.pin]]
        return f"{name}.in{self.pin}({src}) {kind}"


def check_transition_fault(circ: CompiledCircuit,
                           fault: TransitionFault) -> None:
    """Validate that ``fault`` names a real line of ``circ``.

    Raises :class:`FaultModelError` otherwise.  Site validity is exactly
    stuck-at site validity, so the check delegates.
    """
    if not isinstance(fault, TransitionFault):
        raise FaultModelError(
            f"expected a TransitionFault, got {type(fault).__name__}"
        )
    check_fault(circ, fault.as_stuck_at())


def transition_universe(circ: CompiledCircuit) -> List[TransitionFault]:
    """All transition faults of ``circ``, in ``(node, pin, rise)`` order.

    Two faults (slow-to-fall, slow-to-rise) per line, over the same lines
    as the stuck-at universe (:func:`repro.faults.universe.full_universe`);
    the deterministic topological order serves as the transition
    experiments' "original order".
    """
    faults: List[TransitionFault] = []
    for node in range(circ.num_nodes):
        entries: List[TransitionFault] = []
        if circ.fanout[node] or circ.is_output[node]:
            entries.append(TransitionFault(node, STEM, SLOW_TO_FALL))
            entries.append(TransitionFault(node, STEM, SLOW_TO_RISE))
        for pin, src in enumerate(circ.fanin[node]):
            if line_branches(circ, src):
                entries.append(TransitionFault(node, pin, SLOW_TO_FALL))
                entries.append(TransitionFault(node, pin, SLOW_TO_RISE))
        entries.sort()
        faults.extend(entries)
    return faults


def _input_line_fault(circ: CompiledCircuit, gate: int, pin: int,
                      rise: int) -> TransitionFault:
    """The transition fault on the line feeding ``gate.pin``."""
    src = circ.fanin[gate][pin]
    if line_branches(circ, src):
        return TransitionFault(gate, pin, rise)
    return TransitionFault(src, STEM, rise)


def collapse_transition_faults(circ: CompiledCircuit,
                               universe: List[TransitionFault] | None = None
                               ) -> CollapsedFaults:
    """Collapse transition faults by structural equivalence.

    Mirrors :func:`repro.faults.collapse.collapse_faults` (union-find over
    the universe, lowest-sorting member as representative), with the rule
    set restricted to what is *sound* for two-pattern detection:

    * BUF: input slow-to-v  ==  output slow-to-v;
    * NOT: input slow-to-v  ==  output slow-to-(opposite).

    Single-input gates map the launch condition exactly (input at the
    initial value iff output at the corresponding value) and inherit the
    stuck-at capture equivalence, so detection sets are identical.  The
    multi-input AND/OR/NAND/NOR rules of the stuck-at collapser do NOT
    carry over: an AND input at 0 under ``v1`` forces the output to 0,
    but an output at 0 does not fix any particular input — only a
    dominance, which would lose coverage if merged.  The test suite
    verifies semantic equivalence of every class by exhaustive two-pattern
    simulation on small circuits.
    """
    if universe is None:
        universe = transition_universe(circ)
    index = {f: i for i, f in enumerate(universe)}
    uf = _UnionFind(len(universe))

    def merge(a: TransitionFault, b: TransitionFault) -> None:
        ia = index.get(a)
        ib = index.get(b)
        if ia is not None and ib is not None:
            uf.union(ia, ib)

    for gate in circ.gate_nodes():
        gtype = circ.node_type[gate]
        if gtype == GateType.BUF:
            for rise in (SLOW_TO_FALL, SLOW_TO_RISE):
                merge(_input_line_fault(circ, gate, 0, rise),
                      TransitionFault(gate, STEM, rise))
        elif gtype == GateType.NOT:
            for rise in (SLOW_TO_FALL, SLOW_TO_RISE):
                merge(_input_line_fault(circ, gate, 0, rise),
                      TransitionFault(gate, STEM, 1 - rise))
        # Multi-input gates: dominance only, never equivalence (see above).

    return gather_classes(universe, uf)


def transition_fault_list(circ: CompiledCircuit) -> List[TransitionFault]:
    """Convenience: the collapsed representatives in original order."""
    return list(collapse_transition_faults(circ).representatives)
