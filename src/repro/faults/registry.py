"""The fault-model registry: one pluggable description per fault model.

The ADI pipeline is fault-model-polymorphic — the paper's argument only
needs a notion of "vector set" and "detection word", not a specific
defect mechanism.  Historically that polymorphism lived in scattered
``isinstance`` checks on the pattern container; this module centralizes
it, mirroring the engine registry of :mod:`repro.fsim.backend`: a
:class:`FaultModel` bundles everything a pipeline stage needs to know
about one model —

* how to enumerate and structurally collapse its fault universe;
* which pattern container carries its tests (:class:`PatternSet` for
  single vectors, :class:`PatternPairSet` for launch/capture pairs) and
  how to draw a random candidate pool of them;
* how to stage a block into a fault-simulation backend and query
  detection words (the stuck-at vs. two-pattern engine contract);
* which ordered test-generation loop produces its tests;
* a JSON codec for individual faults (artifact caching).

``stuck_at`` and ``transition`` register here at import time; adding a
future model (e.g. bridging) means registering one new
:class:`FaultModel` — ``compute_adi``, ``select_u``, ``drop_simulate``,
the fault orders, the :class:`repro.flow.flow.Flow` facade and the CLI
all dispatch through this registry and pick it up unchanged.

:func:`query_detection_words` and the :data:`PatternBlock` alias moved
here from :mod:`repro.fsim.dropping` (which keeps deprecated aliases).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import FaultModelError
from repro.faults.collapse import collapsed_fault_list
from repro.faults.model import Fault
from repro.faults.transition import (
    TransitionFault,
    transition_fault_list,
    transition_universe,
)
from repro.faults.universe import full_universe
from repro.sim.patterns import PatternPairSet, PatternSet
from repro.utils.detmatrix import DetectionMatrix

#: A simulatable block of tests: single vectors, or two-pattern
#: (launch, capture) pairs — every pipeline stage is polymorphic over
#: both, dispatching through :func:`model_for_block`.
PatternBlock = Union[PatternSet, PatternPairSet]


def default_testgen_result_from_json(common, payload):
    """Construct a plain :class:`~repro.atpg.engine.TestGenResult`.

    The default ``testgen_result_from_json`` for models whose test
    generator returns the standard result type; models with their own
    type (extra fields, different class) override it — see the
    transition model.
    """
    from repro.atpg.engine import TestGenResult

    return TestGenResult(**common)


@dataclass(frozen=True)
class FaultModel:
    """Everything the pipeline needs to know about one fault model.

    The callables deliberately have the narrowest useful signatures so
    that registering a model never forces importing heavy machinery:

    ``universe(circ)`` / ``collapse(circ)``
        Full and structurally collapsed fault lists, in deterministic
        (topological) order — the model's ``Forig``.
    ``random_pool(num_inputs, count, seed)``
        A random candidate pool of ``count`` tests in the model's
        container type (the raw material of ``U`` selection).
    ``load(engine, block)`` / ``query(engine, faults)``
        Stage a block into a :class:`repro.fsim.backend.FaultSimBackend`
        and answer detection words for it — the stuck-at contract for
        single vectors, the two-pattern contract for pairs.
    ``query_matrix(engine, faults)``
        The packed counterpart of ``query``: a
        :class:`repro.utils.detmatrix.DetectionMatrix` instead of
        big-int words (bit-identical rows).  The built-in models route
        to the engine's native matrix query when it has one and pack
        the big-int words once otherwise, so third-party engines keep
        working unchanged.
    ``testgen(circ, ordered_faults, config)``
        The ordered fault-dropping test-generation loop
        (:func:`repro.atpg.engine.generate_tests` or
        :func:`repro.atpg.transition.generate_transition_tests`);
        implementations import lazily to keep the registry import-light.
    ``fault_to_json(fault)`` / ``fault_from_json(data)``
        A stable JSON codec for one fault, used by the artifact cache.
    ``testgen_result_from_json(common, payload)``
        Construct the model's test-generation result type from the
        decoded shared fields plus the raw payload (for model-specific
        extras like ``launch_fallbacks``) — the cache's counterpart of
        ``testgen``, so deserialization never switches on model names.
    """

    name: str
    fault_type: type
    container_type: type
    universe: Callable
    collapse: Callable
    random_pool: Callable
    load: Callable
    query: Callable
    testgen: Callable
    fault_to_json: Callable
    fault_from_json: Callable
    testgen_result_from_json: Callable = default_testgen_result_from_json
    #: Packed counterpart of ``query``; ``None`` falls back to packing
    #: the big-int words of ``query`` once (third-party models).
    query_matrix: Optional[Callable] = None

    def target_faults(self, circ, collapse: bool = True) -> list:
        """The model's target list ``F``: collapsed by default."""
        return list(self.collapse(circ) if collapse else self.universe(circ))

    def shard_target_faults(self, circ, num_shards: int,
                            collapse: bool = True) -> List[list]:
        """The target list split into ``num_shards`` contiguous slices.

        The sharding contract of :mod:`repro.fsim.sharded` for any
        registered model: slices are balanced, order-preserving, and
        concatenate back to :meth:`target_faults` exactly — so per-shard
        detection-matrix rows reassemble bit-identically.  Shards past
        the fault count come back empty rather than failing, matching
        the planner.
        """
        from repro.fsim.sharded import plan_shards

        faults = self.target_faults(circ, collapse=collapse)
        return [faults[start:stop]
                for start, stop in plan_shards(len(faults), num_shards)]


_REGISTRY: Dict[str, FaultModel] = {}


def register_fault_model(model: FaultModel, replace: bool = False) -> None:
    """Register a fault model under its ``name``.

    Third-party models plug in here; ``replace=True`` allows overriding a
    built-in (used by tests to stub models).
    """
    if not replace and model.name in _REGISTRY:
        raise FaultModelError(
            f"fault model {model.name!r} already registered"
        )
    _REGISTRY[model.name] = model


def available_fault_models() -> List[str]:
    """Registered fault-model names, sorted."""
    return sorted(_REGISTRY)


def fault_model(name: Union[str, FaultModel]) -> FaultModel:
    """Look up a fault model by name (instances pass through).

    Unknown names raise :class:`repro.errors.FaultModelError` listing the
    registered models, so a typo in a config fails loudly at resolution
    time rather than as a ``KeyError`` deep in a pipeline.
    """
    if isinstance(name, FaultModel):
        return name
    model = _REGISTRY.get(name)
    if model is None:
        raise FaultModelError(
            f"unknown fault model {name!r}; "
            f"available: {available_fault_models()}"
        )
    return model


def model_for_block(block: PatternBlock) -> FaultModel:
    """Dispatch on a pattern container: the model whose tests it holds.

    This one lookup replaces the historical ``isinstance`` checks in
    ``compute_adi`` / ``select_u`` / ``drop_simulate``; an unknown
    container type raises :class:`repro.errors.FaultModelError` naming
    the registered containers.
    """
    for model in _REGISTRY.values():
        if isinstance(block, model.container_type):
            # PatternPairSet is not a PatternSet subclass (and vice
            # versa), so the first match is the only match.
            return model
    raise FaultModelError(
        f"no registered fault model consumes pattern blocks of type "
        f"{type(block).__name__}; registered containers: "
        f"{sorted(m.container_type.__name__ for m in _REGISTRY.values())}"
    )


def query_detection_words(engine, block: PatternBlock,
                          faults: Sequence) -> List[int]:
    """Load ``block`` into ``engine`` and query every fault's word.

    Dispatches through the registry on the block type: a
    :class:`PatternPairSet` routes to the engine's two-pattern transition
    contract, a :class:`PatternSet` to the plain stuck-at contract.  This
    one switch makes every consumer built on blocks of patterns
    (dropping, ``U`` selection, coverage curves, ADI) work for every
    registered fault model.
    """
    model = model_for_block(block)
    model.load(engine, block)
    return model.query(engine, faults)


def query_detection_matrix(engine, block: PatternBlock,
                           faults: Sequence) -> DetectionMatrix:
    """Load ``block`` into ``engine`` and query the packed matrix.

    The packed counterpart of :func:`query_detection_words`: same
    registry dispatch on the block type, but the answer stays a
    ``uint64`` :class:`~repro.utils.detmatrix.DetectionMatrix` end to
    end — no per-fault big-int materialization.  Models without a
    ``query_matrix`` entry (third-party registrations) fall back to
    packing their big-int words once.
    """
    model = model_for_block(block)
    model.load(engine, block)
    if model.query_matrix is not None:
        return model.query_matrix(engine, faults)
    return DetectionMatrix.from_bigints(
        model.query(engine, faults), block.num_patterns
    )


# -- built-in models ----------------------------------------------------------

def _stuck_at_query_matrix(engine, faults) -> DetectionMatrix:
    """Native packed query when the engine has one; pack once otherwise."""
    from repro.fsim.backend import backend_detection_matrix

    return backend_detection_matrix(engine, faults)


def _transition_query_matrix(engine, faults) -> DetectionMatrix:
    """Packed two-pattern query with the same pack-once fallback."""
    from repro.fsim.backend import backend_transition_detection_matrix

    return backend_transition_detection_matrix(engine, faults)


def _stuck_at_testgen(circ, ordered_faults, config=None):
    """Lazy forwarder to :func:`repro.atpg.engine.generate_tests`."""
    from repro.atpg.engine import generate_tests

    return generate_tests(circ, ordered_faults, config)


def _transition_testgen(circ, ordered_faults, config=None):
    """Lazy forwarder to :func:`~repro.atpg.transition.generate_transition_tests`."""
    from repro.atpg.transition import generate_transition_tests

    return generate_transition_tests(circ, ordered_faults, config)


def _transition_result_from_json(common, payload):
    """Lazy constructor for a cached
    :class:`~repro.atpg.transition.TransitionTestGenResult`."""
    from repro.atpg.transition import TransitionTestGenResult

    return TransitionTestGenResult(
        launch_fallbacks=int(payload.get("launch_fallbacks", 0)), **common
    )


def _stuck_at_from_json(data) -> Fault:
    node, pin, value = data
    return Fault(int(node), int(pin), int(value))


def _transition_from_json(data) -> TransitionFault:
    node, pin, rise = data
    return TransitionFault(int(node), int(pin), int(rise))


STUCK_AT = FaultModel(
    name="stuck_at",
    fault_type=Fault,
    container_type=PatternSet,
    universe=full_universe,
    collapse=collapsed_fault_list,
    random_pool=lambda num_inputs, count, seed: PatternSet.random(
        num_inputs, count, seed=seed
    ),
    load=lambda engine, block: engine.load(block),
    query=lambda engine, faults: engine.detection_words(faults),
    query_matrix=_stuck_at_query_matrix,
    testgen=_stuck_at_testgen,
    fault_to_json=lambda f: [f.node, f.pin, f.value],
    fault_from_json=_stuck_at_from_json,
)

TRANSITION = FaultModel(
    name="transition",
    fault_type=TransitionFault,
    container_type=PatternPairSet,
    universe=transition_universe,
    collapse=transition_fault_list,
    random_pool=lambda num_inputs, count, seed: PatternPairSet.random(
        num_inputs, count, seed=seed
    ),
    load=lambda engine, block: engine.load_pairs(block),
    query=lambda engine, faults: engine.transition_detection_words(faults),
    query_matrix=_transition_query_matrix,
    testgen=_transition_testgen,
    fault_to_json=lambda f: [f.node, f.pin, f.rise],
    fault_from_json=_transition_from_json,
    testgen_result_from_json=_transition_result_from_json,
)

register_fault_model(STUCK_AT)
register_fault_model(TRANSITION)
