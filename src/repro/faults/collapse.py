"""Structural fault equivalence collapsing.

Two faults are *equivalent* when every test detecting one detects the
other; targeting one representative per equivalence class shrinks the
target list without losing coverage.  The classical structural rules
implemented here (union-find over the full universe):

* AND:  s-a-0 on any input line  ==  s-a-0 on the output;
* NAND: s-a-0 on any input line  ==  s-a-1 on the output;
* OR:   s-a-1 on any input line  ==  s-a-1 on the output;
* NOR:  s-a-1 on any input line  ==  s-a-0 on the output;
* NOT:  input s-a-v  ==  output s-a-(1-v);
* BUF:  input s-a-v  ==  output s-a-v.

"Input line" means the branch fault when the driver line branches
(fanout above one, or a primary output that also feeds logic), otherwise
the driver's stem fault — so equivalences chain through fanout-free
regions exactly as in the textbook treatment, and never across a point
that is observed externally.  XOR-family gates admit no structural
input/output equivalence.  The test suite verifies semantic equivalence
of every collapsed class by exhaustive simulation on small circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.circuit.flatten import CompiledCircuit
from repro.circuit.gate_types import GateType
from repro.faults.model import STEM, Fault
from repro.faults.universe import full_universe, line_branches


class _UnionFind:
    """Minimal union-find with path halving."""

    def __init__(self, size: int):
        self.parent = list(range(size))

    def find(self, a: int) -> int:
        parent = self.parent
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic: the smaller index becomes the root.
            if ra > rb:
                ra, rb = rb, ra
            self.parent[rb] = ra


@dataclass(frozen=True)
class CollapsedFaults:
    """Result of equivalence collapsing.

    ``representatives`` is ordered by fault order (topological), which the
    experiments treat as the paper's original fault order ``Forig``.

    The container is fault-model-agnostic: stuck-at collapsing
    (:func:`collapse_faults`) and transition-fault collapsing
    (:func:`repro.faults.transition.collapse_transition_faults`) both
    return it, with members of the respective fault type.
    """

    universe: tuple
    representatives: tuple
    class_index: Dict[Fault, int]

    @property
    def num_classes(self) -> int:
        """Number of equivalence classes (= collapsed fault count)."""
        return len(self.representatives)

    def representative_of(self, fault: Fault) -> Fault:
        """Map any universe fault to its class representative."""
        return self.representatives[self.class_index[fault]]

    def members(self, representative: Fault) -> List[Fault]:
        """All universe faults in the representative's class."""
        idx = self.class_index[representative]
        return [f for f in self.universe if self.class_index[f] == idx]


def _input_line_fault(circ: CompiledCircuit, gate: int, pin: int, value: int) -> Fault:
    """The fault on the line feeding ``gate.pin``: branch or driver stem."""
    src = circ.fanin[gate][pin]
    if line_branches(circ, src):
        return Fault(gate, pin, value)
    return Fault(src, STEM, value)


def collapse_faults(circ: CompiledCircuit,
                    universe: Sequence[Fault] | None = None) -> CollapsedFaults:
    """Collapse ``universe`` (default: the full universe) by equivalence."""
    if universe is None:
        universe = full_universe(circ)
    index: Dict[Fault, int] = {f: i for i, f in enumerate(universe)}
    uf = _UnionFind(len(universe))

    def merge(a: Fault, b: Fault) -> None:
        ia = index.get(a)
        ib = index.get(b)
        if ia is not None and ib is not None:
            uf.union(ia, ib)

    for gate in circ.gate_nodes():
        gtype = circ.node_type[gate]
        fanin = circ.fanin[gate]
        out0 = Fault(gate, STEM, 0)
        out1 = Fault(gate, STEM, 1)
        if gtype == GateType.AND:
            for pin in range(len(fanin)):
                merge(_input_line_fault(circ, gate, pin, 0), out0)
        elif gtype == GateType.NAND:
            for pin in range(len(fanin)):
                merge(_input_line_fault(circ, gate, pin, 0), out1)
        elif gtype == GateType.OR:
            for pin in range(len(fanin)):
                merge(_input_line_fault(circ, gate, pin, 1), out1)
        elif gtype == GateType.NOR:
            for pin in range(len(fanin)):
                merge(_input_line_fault(circ, gate, pin, 1), out0)
        elif gtype == GateType.NOT:
            merge(_input_line_fault(circ, gate, 0, 0), out1)
            merge(_input_line_fault(circ, gate, 0, 1), out0)
        elif gtype == GateType.BUF:
            merge(_input_line_fault(circ, gate, 0, 0), out0)
            merge(_input_line_fault(circ, gate, 0, 1), out1)
        # XOR / XNOR / CONST: no structural equivalences.

    return gather_classes(universe, uf)


def gather_classes(universe: Sequence, uf: _UnionFind) -> CollapsedFaults:
    """Build a :class:`CollapsedFaults` from a union-find over ``universe``.

    The representative is the member whose ``(node, pin, ...)`` tuple sorts
    lowest, i.e. the fault closest to the inputs.  Any deterministic pick
    works; this one keeps the original order stable under re-collapsing.
    Shared by the stuck-at and transition-fault collapsers.
    """
    roots: Dict[int, List[int]] = {}
    for i in range(len(universe)):
        roots.setdefault(uf.find(i), []).append(i)

    rep_pairs: List[tuple] = []  # (rep fault, class member indices)
    for members in roots.values():
        rep_idx = min(members)
        rep_pairs.append((universe[rep_idx], members))
    rep_pairs.sort(key=lambda pair: pair[0])

    class_index: Dict[Fault, int] = {}
    representatives: List[Fault] = []
    for class_id, (rep, members) in enumerate(rep_pairs):
        representatives.append(rep)
        for i in members:
            class_index[universe[i]] = class_id

    return CollapsedFaults(
        universe=tuple(universe),
        representatives=tuple(representatives),
        class_index=class_index,
    )


def collapsed_fault_list(circ: CompiledCircuit) -> List[Fault]:
    """Convenience: the collapsed representatives in original order."""
    return list(collapse_faults(circ).representatives)
