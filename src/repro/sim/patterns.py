"""Pattern containers and sources.

A :class:`PatternSet` stores N input vectors *column-wise*: one big-int
word per primary input, bit ``p`` of word ``i`` being input ``i``'s value
under pattern ``p``.  That is exactly the layout the bit-parallel
simulator consumes, so simulation needs no transposition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.utils.bitvec import full_mask
from repro.utils.rng import make_rng, random_word


@dataclass(frozen=True)
class PatternSet:
    """An immutable set of input patterns in column-major (word) form."""

    num_inputs: int
    num_patterns: int
    words: Tuple[int, ...]

    def __post_init__(self):
        if len(self.words) != self.num_inputs:
            raise SimulationError(
                f"expected {self.num_inputs} words, got {len(self.words)}"
            )
        mask = full_mask(self.num_patterns)
        for i, word in enumerate(self.words):
            if word < 0 or word & ~mask:
                raise SimulationError(
                    f"word for input {i} has bits outside {self.num_patterns} patterns"
                )

    # -- constructors -------------------------------------------------------

    @staticmethod
    def from_vectors(vectors: Sequence[Sequence[int]], num_inputs: int | None = None) -> "PatternSet":
        """Build from row-major 0/1 vectors (``vectors[p][i]``)."""
        if not vectors:
            if num_inputs is None:
                raise SimulationError("empty pattern set needs num_inputs")
            return PatternSet(num_inputs, 0, tuple([0] * num_inputs))
        width = len(vectors[0])
        if num_inputs is not None and num_inputs != width:
            raise SimulationError(
                f"vectors have {width} inputs, expected {num_inputs}"
            )
        words = [0] * width
        for p, vec in enumerate(vectors):
            if len(vec) != width:
                raise SimulationError(
                    f"pattern {p} has {len(vec)} values, expected {width}"
                )
            bit = 1 << p
            for i, value in enumerate(vec):
                if value not in (0, 1):
                    raise SimulationError(
                        f"pattern {p}, input {i}: value {value!r} not 0/1"
                    )
                if value:
                    words[i] |= bit
        return PatternSet(width, len(vectors), tuple(words))

    @staticmethod
    def from_integers(values: Sequence[int], num_inputs: int) -> "PatternSet":
        """Build from integer-encoded vectors, input 0 = most significant bit.

        This matches the paper's convention of naming an input vector by
        its decimal value (Table 1 of the paper: ``u`` = 0..15 for the
        4-input ``lion`` example).
        """
        vectors = []
        for value in values:
            if value < 0 or value >= (1 << num_inputs):
                raise SimulationError(
                    f"vector value {value} out of range for {num_inputs} inputs"
                )
            vectors.append(
                [(value >> (num_inputs - 1 - i)) & 1 for i in range(num_inputs)]
            )
        return PatternSet.from_vectors(vectors, num_inputs)

    @staticmethod
    def random(num_inputs: int, num_patterns: int, seed: int = 0,
               rng: random.Random | None = None) -> "PatternSet":
        """Uniformly random patterns from an explicit seed or RNG."""
        if rng is None:
            rng = make_rng(seed, "patterns")
        words = tuple(random_word(rng, num_patterns) for _ in range(num_inputs))
        return PatternSet(num_inputs, num_patterns, words)

    @staticmethod
    def exhaustive(num_inputs: int) -> "PatternSet":
        """All ``2**num_inputs`` vectors, ordered by integer value.

        Pattern ``p`` is the vector whose integer encoding (input 0 most
        significant) equals ``p``, so ``lion``-style tables index
        straight into it.
        """
        if num_inputs > 20:
            raise SimulationError(
                f"refusing to enumerate 2**{num_inputs} patterns"
            )
        return PatternSet.from_integers(
            list(range(1 << num_inputs)), num_inputs
        )

    # -- access --------------------------------------------------------------

    def vector(self, p: int) -> Tuple[int, ...]:
        """Row ``p`` as a 0/1 tuple."""
        if not 0 <= p < self.num_patterns:
            raise IndexError(f"pattern {p} out of range")
        return tuple((w >> p) & 1 for w in self.words)

    def as_integer(self, p: int) -> int:
        """Row ``p`` as its integer encoding (input 0 most significant)."""
        vec = self.vector(p)
        value = 0
        for bit in vec:
            value = (value << 1) | bit
        return value

    def iter_vectors(self) -> Iterator[Tuple[int, ...]]:
        """Iterate rows in pattern order."""
        for p in range(self.num_patterns):
            yield self.vector(p)

    # -- slicing / combination ------------------------------------------------

    def take(self, count: int) -> "PatternSet":
        """First ``count`` patterns."""
        return self.slice(0, count)

    def slice(self, start: int, stop: int) -> "PatternSet":
        """Patterns ``start..stop-1`` as a new set."""
        if not 0 <= start <= stop <= self.num_patterns:
            raise IndexError(f"slice [{start}, {stop}) out of range")
        width = stop - start
        mask = full_mask(width)
        words = tuple((w >> start) & mask for w in self.words)
        return PatternSet(self.num_inputs, width, words)

    def concat(self, other: "PatternSet") -> "PatternSet":
        """This set followed by ``other``."""
        if other.num_inputs != self.num_inputs:
            raise SimulationError("pattern sets have different input counts")
        shift = self.num_patterns
        words = tuple(
            w | (ow << shift) for w, ow in zip(self.words, other.words)
        )
        return PatternSet(self.num_inputs, shift + other.num_patterns, words)

    def select(self, indices: Sequence[int]) -> "PatternSet":
        """Re-index patterns: new pattern k = old pattern ``indices[k]``."""
        return PatternSet.from_vectors(
            [self.vector(p) for p in indices], self.num_inputs
        )

    def chunks(self, size: int) -> Iterator["PatternSet"]:
        """Yield consecutive slices of at most ``size`` patterns."""
        if size < 1:
            raise SimulationError("chunk size must be positive")
        for start in range(0, self.num_patterns, size):
            yield self.slice(start, min(start + size, self.num_patterns))

    def __len__(self) -> int:
        return self.num_patterns
