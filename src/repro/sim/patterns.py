"""Pattern containers and sources.

A :class:`PatternSet` stores N input vectors *column-wise*: one big-int
word per primary input, bit ``p`` of word ``i`` being input ``i``'s value
under pattern ``p``.  That is exactly the layout the bit-parallel
simulator consumes, so simulation needs no transposition.

A :class:`PatternPairSet` stores N two-pattern tests as two aligned
:class:`PatternSet` halves — the *launch* vectors ``v1`` and the
*capture* vectors ``v2`` of transition-fault testing.  Pair ``p`` is
``(launch.vector(p), capture.vector(p))``; all slicing/chunking
operations act on whole pairs, so the fault-dropping simulator and the
ADI computation consume pair blocks exactly like single-vector blocks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.utils.bitvec import full_mask
from repro.utils.rng import random_word, resolve_rng


@dataclass(frozen=True)
class PatternSet:
    """An immutable set of input patterns in column-major (word) form."""

    num_inputs: int
    num_patterns: int
    words: Tuple[int, ...]

    def __post_init__(self):
        if len(self.words) != self.num_inputs:
            raise SimulationError(
                f"expected {self.num_inputs} words, got {len(self.words)}"
            )
        mask = full_mask(self.num_patterns)
        for i, word in enumerate(self.words):
            if word < 0 or word & ~mask:
                raise SimulationError(
                    f"word for input {i} has bits outside {self.num_patterns} patterns"
                )

    # -- constructors -------------------------------------------------------

    @staticmethod
    def from_vectors(vectors: Sequence[Sequence[int]], num_inputs: int | None = None) -> "PatternSet":
        """Build from row-major 0/1 vectors (``vectors[p][i]``)."""
        if not vectors:
            if num_inputs is None:
                raise SimulationError("empty pattern set needs num_inputs")
            return PatternSet(num_inputs, 0, tuple([0] * num_inputs))
        width = len(vectors[0])
        if num_inputs is not None and num_inputs != width:
            raise SimulationError(
                f"vectors have {width} inputs, expected {num_inputs}"
            )
        words = [0] * width
        for p, vec in enumerate(vectors):
            if len(vec) != width:
                raise SimulationError(
                    f"pattern {p} has {len(vec)} values, expected {width}"
                )
            bit = 1 << p
            for i, value in enumerate(vec):
                if value not in (0, 1):
                    raise SimulationError(
                        f"pattern {p}, input {i}: value {value!r} not 0/1"
                    )
                if value:
                    words[i] |= bit
        return PatternSet(width, len(vectors), tuple(words))

    @staticmethod
    def from_integers(values: Sequence[int], num_inputs: int) -> "PatternSet":
        """Build from integer-encoded vectors, input 0 = most significant bit.

        This matches the paper's convention of naming an input vector by
        its decimal value (Table 1 of the paper: ``u`` = 0..15 for the
        4-input ``lion`` example).
        """
        vectors = []
        for value in values:
            if value < 0 or value >= (1 << num_inputs):
                raise SimulationError(
                    f"vector value {value} out of range for {num_inputs} inputs"
                )
            vectors.append(
                [(value >> (num_inputs - 1 - i)) & 1 for i in range(num_inputs)]
            )
        return PatternSet.from_vectors(vectors, num_inputs)

    @staticmethod
    def random(num_inputs: int, num_patterns: int, seed: int | None = None,
               rng: random.Random | None = None) -> "PatternSet":
        """Uniformly random patterns from an explicit seed *or* RNG.

        Passing both ``seed`` and ``rng`` raises
        :class:`repro.errors.ExperimentError` (see
        :func:`repro.utils.rng.resolve_rng`); with neither, seed 0 applies.
        """
        rng = resolve_rng(seed, rng, "patterns")
        words = tuple(random_word(rng, num_patterns) for _ in range(num_inputs))
        return PatternSet(num_inputs, num_patterns, words)

    @staticmethod
    def exhaustive(num_inputs: int) -> "PatternSet":
        """All ``2**num_inputs`` vectors, ordered by integer value.

        Pattern ``p`` is the vector whose integer encoding (input 0 most
        significant) equals ``p``, so ``lion``-style tables index
        straight into it.
        """
        if num_inputs > 20:
            raise SimulationError(
                f"refusing to enumerate 2**{num_inputs} patterns"
            )
        return PatternSet.from_integers(
            list(range(1 << num_inputs)), num_inputs
        )

    # -- access --------------------------------------------------------------

    def vector(self, p: int) -> Tuple[int, ...]:
        """Row ``p`` as a 0/1 tuple."""
        if not 0 <= p < self.num_patterns:
            raise IndexError(f"pattern {p} out of range")
        return tuple((w >> p) & 1 for w in self.words)

    def as_integer(self, p: int) -> int:
        """Row ``p`` as its integer encoding (input 0 most significant)."""
        vec = self.vector(p)
        value = 0
        for bit in vec:
            value = (value << 1) | bit
        return value

    def iter_vectors(self) -> Iterator[Tuple[int, ...]]:
        """Iterate rows in pattern order."""
        for p in range(self.num_patterns):
            yield self.vector(p)

    # -- slicing / combination ------------------------------------------------

    def take(self, count: int) -> "PatternSet":
        """First ``count`` patterns."""
        return self.slice(0, count)

    def slice(self, start: int, stop: int) -> "PatternSet":
        """Patterns ``start..stop-1`` as a new set."""
        if not 0 <= start <= stop <= self.num_patterns:
            raise IndexError(f"slice [{start}, {stop}) out of range")
        width = stop - start
        mask = full_mask(width)
        words = tuple((w >> start) & mask for w in self.words)
        return PatternSet(self.num_inputs, width, words)

    def concat(self, other: "PatternSet") -> "PatternSet":
        """This set followed by ``other``."""
        if other.num_inputs != self.num_inputs:
            raise SimulationError("pattern sets have different input counts")
        shift = self.num_patterns
        words = tuple(
            w | (ow << shift) for w, ow in zip(self.words, other.words)
        )
        return PatternSet(self.num_inputs, shift + other.num_patterns, words)

    def select(self, indices: Sequence[int]) -> "PatternSet":
        """Re-index patterns: new pattern k = old pattern ``indices[k]``."""
        return PatternSet.from_vectors(
            [self.vector(p) for p in indices], self.num_inputs
        )

    def chunks(self, size: int) -> Iterator["PatternSet"]:
        """Yield consecutive slices of at most ``size`` patterns."""
        if size < 1:
            raise SimulationError("chunk size must be positive")
        for start in range(0, self.num_patterns, size):
            yield self.slice(start, min(start + size, self.num_patterns))

    def __len__(self) -> int:
        return self.num_patterns


@dataclass(frozen=True)
class PatternPairSet:
    """An immutable set of two-pattern (launch, capture) tests.

    ``launch`` holds the initialization vectors ``v1``, ``capture`` the
    observation vectors ``v2``; both halves have the same input count and
    the same number of patterns, and pair ``p`` is row ``p`` of each.
    """

    launch: PatternSet
    capture: PatternSet

    def __post_init__(self):
        if self.launch.num_inputs != self.capture.num_inputs:
            raise SimulationError(
                f"launch half has {self.launch.num_inputs} inputs, "
                f"capture half has {self.capture.num_inputs}"
            )
        if self.launch.num_patterns != self.capture.num_patterns:
            raise SimulationError(
                f"launch half has {self.launch.num_patterns} patterns, "
                f"capture half has {self.capture.num_patterns}"
            )

    @property
    def num_inputs(self) -> int:
        """Input count shared by both halves."""
        return self.launch.num_inputs

    @property
    def num_patterns(self) -> int:
        """Number of pairs (the block width for detection words)."""
        return self.launch.num_patterns

    # -- constructors -------------------------------------------------------

    @staticmethod
    def from_vector_pairs(pairs: Sequence[Tuple[Sequence[int], Sequence[int]]],
                          num_inputs: int | None = None) -> "PatternPairSet":
        """Build from ``(v1, v2)`` row pairs of 0/1 vectors."""
        launches = [list(v1) for v1, _ in pairs]
        captures = [list(v2) for _, v2 in pairs]
        return PatternPairSet(
            PatternSet.from_vectors(launches, num_inputs),
            PatternSet.from_vectors(captures, num_inputs),
        )

    @staticmethod
    def random(num_inputs: int, num_pairs: int, seed: int | None = None,
               rng: random.Random | None = None) -> "PatternPairSet":
        """Independent uniformly random halves (enhanced-scan style pairs).

        With an enhanced scan cell both vectors of a pair are arbitrary,
        so the launch and capture halves are drawn independently from one
        RNG stream (deterministic given ``seed``).  As with
        :meth:`PatternSet.random`, ``seed`` and ``rng`` are mutually
        exclusive (:func:`repro.utils.rng.resolve_rng`).
        """
        rng = resolve_rng(seed, rng, "pattern-pairs")
        launch = PatternSet.random(num_inputs, num_pairs, rng=rng)
        capture = PatternSet.random(num_inputs, num_pairs, rng=rng)
        return PatternPairSet(launch, capture)

    @staticmethod
    def launch_on_shift(launch: PatternSet, scan_in: int = 0) -> "PatternPairSet":
        """Pairs where ``v2`` is ``v1`` shifted one scan position.

        Launch-on-shift (skewed-load) testing derives the capture vector
        from the last shift of the scan chain: input 0 takes the fresh
        ``scan_in`` bit and input ``i`` takes ``v1``'s input ``i - 1``,
        modelling a single scan chain in primary-input order.
        """
        if scan_in not in (0, 1):
            raise SimulationError(f"scan_in must be 0 or 1, got {scan_in!r}")
        width = launch.num_patterns
        fill = full_mask(width) if scan_in else 0
        words = (fill,) + launch.words[:-1] if launch.num_inputs else ()
        return PatternPairSet(
            launch,
            PatternSet(launch.num_inputs, width, tuple(words)),
        )

    @staticmethod
    def launch_on_capture(circ, launch: PatternSet,
                          mapping: Sequence[int] | None = None
                          ) -> "PatternPairSet":
        """Pairs where ``v2`` is the circuit's captured response to ``v1``.

        Launch-on-capture (broadside) testing applies the functional
        next state as the second vector: in the full-scan model the
        flip-flop portion of ``v2`` is the combinational response to
        ``v1`` captured back into the scan cells.  ``mapping[i]`` names
        the primary-output index whose response feeds input ``i``
        (default: output ``i % num_outputs`` — the stand-in wiring used
        for the purely combinational suite circuits, where the real
        PPI/PPO correspondence of a netlist is not available).
        """
        from repro.sim.bitsim import simulate  # local: bitsim imports patterns

        if launch.num_inputs != circ.num_inputs:
            raise SimulationError(
                f"launch set has {launch.num_inputs} inputs, "
                f"circuit has {circ.num_inputs}"
            )
        if not circ.num_outputs:
            raise SimulationError("launch-on-capture needs primary outputs")
        if mapping is None:
            mapping = [i % circ.num_outputs for i in range(circ.num_inputs)]
        elif len(mapping) != circ.num_inputs:
            raise SimulationError(
                f"mapping has {len(mapping)} entries, "
                f"expected {circ.num_inputs}"
            )
        good = simulate(circ, launch)
        words = []
        for out_index in mapping:
            if not 0 <= out_index < circ.num_outputs:
                raise SimulationError(
                    f"mapping names output {out_index}, "
                    f"circuit has {circ.num_outputs}"
                )
            words.append(good[circ.outputs[out_index]])
        return PatternPairSet(
            launch,
            PatternSet(launch.num_inputs, launch.num_patterns, tuple(words)),
        )

    # -- access --------------------------------------------------------------

    def pair(self, p: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Pair ``p`` as ``(v1, v2)`` 0/1 tuples."""
        return (self.launch.vector(p), self.capture.vector(p))

    def iter_pairs(self) -> Iterator[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """Iterate ``(v1, v2)`` pairs in order."""
        for p in range(self.num_patterns):
            yield self.pair(p)

    # -- slicing / combination ------------------------------------------------

    def take(self, count: int) -> "PatternPairSet":
        """First ``count`` pairs."""
        return PatternPairSet(self.launch.take(count), self.capture.take(count))

    def slice(self, start: int, stop: int) -> "PatternPairSet":
        """Pairs ``start..stop-1`` as a new set."""
        return PatternPairSet(
            self.launch.slice(start, stop), self.capture.slice(start, stop)
        )

    def select(self, indices: Sequence[int]) -> "PatternPairSet":
        """Re-index pairs: new pair k = old pair ``indices[k]``."""
        return PatternPairSet(
            self.launch.select(indices), self.capture.select(indices)
        )

    def concat(self, other: "PatternPairSet") -> "PatternPairSet":
        """This set followed by ``other``."""
        return PatternPairSet(
            self.launch.concat(other.launch),
            self.capture.concat(other.capture),
        )

    def chunks(self, size: int) -> Iterator["PatternPairSet"]:
        """Yield consecutive slices of at most ``size`` pairs."""
        if size < 1:
            raise SimulationError("chunk size must be positive")
        for start in range(0, self.num_patterns, size):
            yield self.slice(start, min(start + size, self.num_patterns))

    def __len__(self) -> int:
        return self.num_patterns
