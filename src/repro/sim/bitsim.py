"""Bit-parallel true-value simulation on Python big-ints.

One pass evaluates all N patterns at once: each node's value across the
pattern block is a single arbitrary-precision integer, and a gate is one
or a few bitwise operations regardless of N.  For the word widths used in
this package (tens to a few thousand patterns) this outperforms a numpy
``uint64`` backend because there is exactly one Python-level operation per
gate (see ``benchmarks/bench_ablation_backends.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.circuit.flatten import CompiledCircuit
from repro.circuit.gate_types import GateType
from repro.errors import SimulationError
from repro.sim.patterns import PatternSet
from repro.utils.bitvec import full_mask

_AND = GateType.AND
_NAND = GateType.NAND
_OR = GateType.OR
_NOR = GateType.NOR
_XOR = GateType.XOR
_XNOR = GateType.XNOR
_NOT = GateType.NOT
_BUF = GateType.BUF
_CONST0 = GateType.CONST0
_CONST1 = GateType.CONST1


def eval_gate_words(gtype: GateType, words: Sequence[int], mask: int) -> int:
    """Evaluate one gate over word-valued inputs.

    ``mask`` is the all-ones word for the pattern block; inverting gates
    XOR with it so padding bits above the block never go hot.
    """
    if gtype == _AND or gtype == _NAND:
        acc = mask
        for w in words:
            acc &= w
        return acc if gtype == _AND else acc ^ mask
    if gtype == _OR or gtype == _NOR:
        acc = 0
        for w in words:
            acc |= w
        return acc if gtype == _OR else acc ^ mask
    if gtype == _XOR or gtype == _XNOR:
        acc = 0
        for w in words:
            acc ^= w
        return acc if gtype == _XOR else acc ^ mask
    if gtype == _BUF:
        return words[0]
    if gtype == _NOT:
        return words[0] ^ mask
    if gtype == _CONST0:
        return 0
    if gtype == _CONST1:
        return mask
    raise SimulationError(f"cannot evaluate node type {gtype!r}")


def simulate_words(circ: CompiledCircuit, input_words: Sequence[int],
                   num_patterns: int) -> List[int]:
    """Simulate and return the value word of *every* node.

    ``input_words[i]`` carries primary input ``i`` over the pattern block.
    The returned list is indexed by node id; fault simulation uses it as
    the fault-free reference.
    """
    if len(input_words) != circ.num_inputs:
        raise SimulationError(
            f"{circ.name}: got {len(input_words)} input words, "
            f"expected {circ.num_inputs}"
        )
    mask = full_mask(num_patterns)
    values: List[int] = [0] * circ.num_nodes
    for i, word in enumerate(input_words):
        if word < 0 or word & ~mask:
            raise SimulationError(
                f"input word {i} has bits outside the {num_patterns}-pattern block"
            )
        values[i] = word

    node_type = circ.node_type
    fanin = circ.fanin
    for node in range(circ.num_inputs, circ.num_nodes):
        gtype = node_type[node]
        srcs = fanin[node]
        # Inline the two-input common case; it dominates every netlist.
        if len(srcs) == 2:
            a = values[srcs[0]]
            b = values[srcs[1]]
            if gtype == _NAND:
                values[node] = (a & b) ^ mask
            elif gtype == _AND:
                values[node] = a & b
            elif gtype == _NOR:
                values[node] = (a | b) ^ mask
            elif gtype == _OR:
                values[node] = a | b
            elif gtype == _XOR:
                values[node] = a ^ b
            elif gtype == _XNOR:
                values[node] = a ^ b ^ mask
            else:
                values[node] = eval_gate_words(gtype, (a, b), mask)
        else:
            values[node] = eval_gate_words(
                gtype, [values[s] for s in srcs], mask
            )
    return values


def simulate(circ: CompiledCircuit, patterns: PatternSet) -> List[int]:
    """Simulate a :class:`PatternSet`; returns all node value words."""
    if patterns.num_inputs != circ.num_inputs:
        raise SimulationError(
            f"{circ.name}: pattern set has {patterns.num_inputs} inputs, "
            f"circuit has {circ.num_inputs}"
        )
    return simulate_words(circ, patterns.words, patterns.num_patterns)


def simulate_outputs(circ: CompiledCircuit, patterns: PatternSet) -> List[int]:
    """Simulate and return only the primary-output value words."""
    values = simulate(circ, patterns)
    return [values[out] for out in circ.outputs]


def simulate_vector(circ: CompiledCircuit, vector: Sequence[int]) -> List[int]:
    """Single-vector convenience wrapper: returns per-node scalar 0/1."""
    patterns = PatternSet.from_vectors([list(vector)], circ.num_inputs)
    return simulate(circ, patterns)


class BitSimulator:
    """Stateful wrapper binding a circuit, for repeated simulation calls."""

    def __init__(self, circ: CompiledCircuit):
        self.circ = circ

    def run(self, patterns: PatternSet) -> List[int]:
        """All node words for ``patterns``."""
        return simulate(self.circ, patterns)

    def outputs(self, patterns: PatternSet) -> List[int]:
        """Primary-output words for ``patterns``."""
        return simulate_outputs(self.circ, patterns)

    def output_vector(self, vector: Sequence[int]) -> List[int]:
        """Scalar outputs for one input vector."""
        values = simulate_vector(self.circ, vector)
        return [values[out] & 1 for out in self.circ.outputs]
