"""Three-valued (0/1/X) logic simulation.

Used by PODEM for implication with partially assigned inputs, and by
tests as the reference for X-propagation semantics.  Values are plain
ints: ``ZERO = 0``, ``ONE = 1``, ``X = 2``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.circuit.flatten import CompiledCircuit
from repro.circuit.gate_types import GateType
from repro.errors import SimulationError

ZERO = 0
ONE = 1
X = 2


def eval_gate3(gtype: GateType, values: Sequence[int]) -> int:
    """Evaluate one gate in 3-valued logic.

    A controlling value forces the output even when other inputs are X;
    otherwise any X input makes the output X.
    """
    if gtype == GateType.CONST0:
        return ZERO
    if gtype == GateType.CONST1:
        return ONE
    if gtype == GateType.BUF:
        return values[0]
    if gtype == GateType.NOT:
        v = values[0]
        return X if v == X else v ^ 1

    if gtype in (GateType.AND, GateType.NAND):
        out: int = ONE
        for v in values:
            if v == ZERO:
                out = ZERO
                break
            if v == X:
                out = X
        result = out
        if gtype == GateType.NAND:
            result = X if out == X else out ^ 1
        return result
    if gtype in (GateType.OR, GateType.NOR):
        out = ZERO
        for v in values:
            if v == ONE:
                out = ONE
                break
            if v == X:
                out = X
        result = out
        if gtype == GateType.NOR:
            result = X if out == X else out ^ 1
        return result
    if gtype in (GateType.XOR, GateType.XNOR):
        acc = 0
        for v in values:
            if v == X:
                return X
            acc ^= v
        if gtype == GateType.XNOR:
            acc ^= 1
        return acc
    raise SimulationError(f"cannot evaluate node type {gtype!r}")


def simulate3(circ: CompiledCircuit, input_values: Sequence[int]) -> List[int]:
    """Full-pass 3-valued simulation; returns a value per node.

    ``input_values[i]`` must be 0, 1 or :data:`X`.
    """
    if len(input_values) != circ.num_inputs:
        raise SimulationError(
            f"{circ.name}: got {len(input_values)} input values, "
            f"expected {circ.num_inputs}"
        )
    values: List[int] = [X] * circ.num_nodes
    for i, v in enumerate(input_values):
        if v not in (ZERO, ONE, X):
            raise SimulationError(f"input {i}: {v!r} is not 0/1/X")
        values[i] = v
    for node in range(circ.num_inputs, circ.num_nodes):
        srcs = circ.fanin[node]
        values[node] = eval_gate3(
            circ.node_type[node], [values[s] for s in srcs]
        )
    return values
