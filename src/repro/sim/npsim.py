"""Numpy ``uint64`` bit-parallel simulation backend.

Same semantics as :mod:`repro.sim.bitsim` with signals stored as rows of a
``(num_nodes, num_words)`` ``uint64`` matrix, 64 patterns per word.  This
backend exists as an ablation (DESIGN.md §6): for very wide pattern blocks
it amortizes per-gate dispatch over vectorized words, while the big-int
backend does one Python op per gate regardless of width.  The benchmark
``bench_ablation_backends.py`` measures the crossover.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.circuit.flatten import CompiledCircuit
from repro.circuit.gate_types import GateType
from repro.errors import SimulationError
from repro.sim.patterns import PatternSet


def words_to_matrix(input_words: Sequence[int], num_patterns: int) -> np.ndarray:
    """Convert big-int input words to a ``(num_inputs, num_words)`` matrix."""
    num_words = max(1, (num_patterns + 63) // 64)
    out = np.zeros((len(input_words), num_words), dtype=np.uint64)
    for i, word in enumerate(input_words):
        raw = word.to_bytes(num_words * 8, "little")
        out[i] = np.frombuffer(raw, dtype="<u8")
    return out


def matrix_row_to_int(row: np.ndarray, num_patterns: int) -> int:
    """Convert one uint64 row back to a big-int, masked to ``num_patterns``."""
    value = int.from_bytes(row.astype("<u8").tobytes(), "little")
    return value & ((1 << num_patterns) - 1)


def simulate_matrix(circ: CompiledCircuit, inputs: np.ndarray) -> np.ndarray:
    """Simulate all nodes; returns a ``(num_nodes, num_words)`` matrix."""
    if inputs.shape[0] != circ.num_inputs:
        raise SimulationError(
            f"{circ.name}: matrix has {inputs.shape[0]} input rows, "
            f"expected {circ.num_inputs}"
        )
    num_words = inputs.shape[1]
    values = np.zeros((circ.num_nodes, num_words), dtype=np.uint64)
    values[: circ.num_inputs] = inputs
    ones = np.uint64(0xFFFFFFFFFFFFFFFF)

    node_type = circ.node_type
    fanin = circ.fanin
    for node in range(circ.num_inputs, circ.num_nodes):
        gtype = node_type[node]
        srcs = fanin[node]
        if gtype == GateType.AND or gtype == GateType.NAND:
            acc = values[srcs[0]].copy()
            for s in srcs[1:]:
                acc &= values[s]
            values[node] = acc if gtype == GateType.AND else acc ^ ones
        elif gtype == GateType.OR or gtype == GateType.NOR:
            acc = values[srcs[0]].copy()
            for s in srcs[1:]:
                acc |= values[s]
            values[node] = acc if gtype == GateType.OR else acc ^ ones
        elif gtype == GateType.XOR or gtype == GateType.XNOR:
            acc = values[srcs[0]].copy()
            for s in srcs[1:]:
                acc ^= values[s]
            values[node] = acc if gtype == GateType.XOR else acc ^ ones
        elif gtype == GateType.BUF:
            values[node] = values[srcs[0]]
        elif gtype == GateType.NOT:
            values[node] = values[srcs[0]] ^ ones
        elif gtype == GateType.CONST0:
            values[node] = 0
        elif gtype == GateType.CONST1:
            values[node] = ones
        else:
            raise SimulationError(f"cannot evaluate node type {gtype!r}")
    return values


def simulate(circ: CompiledCircuit, patterns: PatternSet) -> List[int]:
    """Big-int-word interface over the numpy backend.

    Returns the same per-node big-int list as :func:`repro.sim.bitsim.
    simulate`, so the two backends are drop-in interchangeable (and the
    test suite asserts they agree).
    """
    if patterns.num_inputs != circ.num_inputs:
        raise SimulationError(
            f"{circ.name}: pattern set has {patterns.num_inputs} inputs, "
            f"circuit has {circ.num_inputs}"
        )
    matrix = words_to_matrix(patterns.words, patterns.num_patterns)
    values = simulate_matrix(circ, matrix)
    return [
        matrix_row_to_int(values[node], patterns.num_patterns)
        for node in range(circ.num_nodes)
    ]
