"""Numpy ``uint64`` bit-parallel simulation backend.

Same semantics as :mod:`repro.sim.bitsim` with signals stored as rows of a
``(num_nodes, num_words)`` ``uint64`` matrix, 64 patterns per word.  This
backend exists as an ablation (DESIGN.md §6): for very wide pattern blocks
it amortizes per-gate dispatch over vectorized words, while the big-int
backend does one Python op per gate regardless of width.  The benchmark
``bench_ablation_backends.py`` measures the crossover.

:class:`LevelSchedule` levelizes a circuit once into contiguous per-level
gate arrays so that one numpy gather/op/scatter evaluates a whole group of
same-typed gates at a time.  It is the shared propagation core of both the
levelized true-value simulation here and the batched fault simulator in
:mod:`repro.fsim.npfsim` (the same schedule propagates ``(num_nodes, W)``
and ``(num_nodes, B, W)`` value tensors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.circuit.flatten import CompiledCircuit
from repro.circuit.gate_types import GateType
from repro.errors import SimulationError
from repro.sim.patterns import PatternSet

ONES64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def words_to_matrix(input_words: Sequence[int], num_patterns: int) -> np.ndarray:
    """Convert big-int input words to a ``(num_inputs, num_words)`` matrix."""
    num_words = max(1, (num_patterns + 63) // 64)
    out = np.zeros((len(input_words), num_words), dtype=np.uint64)
    for i, word in enumerate(input_words):
        raw = word.to_bytes(num_words * 8, "little")
        out[i] = np.frombuffer(raw, dtype="<u8")
    return out


def matrix_row_to_int(row: np.ndarray, num_patterns: int) -> int:
    """Convert one uint64 row back to a big-int, masked to ``num_patterns``."""
    value = int.from_bytes(row.astype("<u8").tobytes(), "little")
    return value & ((1 << num_patterns) - 1)


def simulate_matrix(circ: CompiledCircuit, inputs: np.ndarray) -> np.ndarray:
    """Simulate all nodes; returns a ``(num_nodes, num_words)`` matrix."""
    if inputs.shape[0] != circ.num_inputs:
        raise SimulationError(
            f"{circ.name}: matrix has {inputs.shape[0]} input rows, "
            f"expected {circ.num_inputs}"
        )
    num_words = inputs.shape[1]
    values = np.zeros((circ.num_nodes, num_words), dtype=np.uint64)
    values[: circ.num_inputs] = inputs
    ones = np.uint64(0xFFFFFFFFFFFFFFFF)

    node_type = circ.node_type
    fanin = circ.fanin
    for node in range(circ.num_inputs, circ.num_nodes):
        gtype = node_type[node]
        srcs = fanin[node]
        if gtype == GateType.AND or gtype == GateType.NAND:
            acc = values[srcs[0]].copy()
            for s in srcs[1:]:
                acc &= values[s]
            values[node] = acc if gtype == GateType.AND else acc ^ ones
        elif gtype == GateType.OR or gtype == GateType.NOR:
            acc = values[srcs[0]].copy()
            for s in srcs[1:]:
                acc |= values[s]
            values[node] = acc if gtype == GateType.OR else acc ^ ones
        elif gtype == GateType.XOR or gtype == GateType.XNOR:
            acc = values[srcs[0]].copy()
            for s in srcs[1:]:
                acc ^= values[s]
            values[node] = acc if gtype == GateType.XOR else acc ^ ones
        elif gtype == GateType.BUF:
            values[node] = values[srcs[0]]
        elif gtype == GateType.NOT:
            values[node] = values[srcs[0]] ^ ones
        elif gtype == GateType.CONST0:
            values[node] = 0
        elif gtype == GateType.CONST1:
            values[node] = ones
        else:
            raise SimulationError(f"cannot evaluate node type {gtype!r}")
    return values


@dataclass(frozen=True)
class GateGroup:
    """Same-typed, same-arity gates of one level, as contiguous arrays.

    ``nodes[k]`` is evaluated from ``srcs[0][k], srcs[1][k], ...`` — one
    numpy gather per pin, one op per group, one scatter back.
    """

    gtype: GateType
    nodes: np.ndarray  # (G,) int64 node ids
    srcs: Tuple[np.ndarray, ...]  # arity arrays of (G,) int64 fanin ids


@dataclass(frozen=True)
class Level:
    """One topological level: vectorized groups plus odd-arity leftovers."""

    number: int
    groups: Tuple[GateGroup, ...]
    #: Gates not worth grouping (arity 0 or > 2): (node, gtype, fanin ids).
    odd: Tuple[Tuple[int, GateType, Tuple[int, ...]], ...]


class LevelSchedule:
    """A circuit levelized once into per-level contiguous gate arrays.

    Construction groups each level's gates by ``(gtype, arity)`` for the
    1- and 2-input gates that dominate every netlist; constants and wider
    gates are kept as per-gate leftovers.  :meth:`eval_level` then works
    on any value tensor whose leading axis is the node id — ``(N, W)``
    for true-value simulation, ``(N, B, W)`` for batched fault simulation
    — because numpy fancy indexing is shape-agnostic past axis 0.
    """

    #: Gate types eval_level vectorizes at each arity; anything else —
    #: including degenerate 1-input AND/OR/... — goes down the odd path.
    VECTORIZED_1 = frozenset({GateType.BUF, GateType.NOT})
    VECTORIZED_2 = frozenset({
        GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
        GateType.XOR, GateType.XNOR,
    })

    def __init__(self, circ: CompiledCircuit):
        self.circ = circ
        by_level: dict = {}
        for node in circ.gate_nodes():
            by_level.setdefault(circ.level[node], []).append(node)

        levels: List[Level] = []
        for lvl in sorted(by_level):
            buckets: dict = {}
            odd: List[Tuple[int, GateType, Tuple[int, ...]]] = []
            for node in by_level[lvl]:
                gtype = circ.node_type[node]
                srcs = circ.fanin[node]
                vectorized = (
                    gtype in self.VECTORIZED_1 if len(srcs) == 1
                    else gtype in self.VECTORIZED_2 if len(srcs) == 2
                    else False
                )
                if vectorized:
                    buckets.setdefault((gtype, len(srcs)), []).append(node)
                else:
                    odd.append((node, gtype, srcs))
            groups = []
            for (gtype, arity), nodes in sorted(buckets.items()):
                node_arr = np.asarray(nodes, dtype=np.int64)
                src_arrs = tuple(
                    np.asarray([circ.fanin[n][pin] for n in nodes],
                               dtype=np.int64)
                    for pin in range(arity)
                )
                groups.append(GateGroup(gtype, node_arr, src_arrs))
            levels.append(Level(lvl, tuple(groups), tuple(odd)))
        self.levels: Tuple[Level, ...] = tuple(levels)

    def eval_level(self, level: Level, values: np.ndarray) -> None:
        """Evaluate one level's gates in place on a value tensor."""
        for group in level.groups:
            gtype = group.gtype
            a = values[group.srcs[0]]
            if len(group.srcs) == 2:
                b = values[group.srcs[1]]
                if gtype == GateType.AND:
                    out = a & b
                elif gtype == GateType.NAND:
                    out = (a & b) ^ ONES64
                elif gtype == GateType.OR:
                    out = a | b
                elif gtype == GateType.NOR:
                    out = (a | b) ^ ONES64
                elif gtype == GateType.XOR:
                    out = a ^ b
                elif gtype == GateType.XNOR:
                    out = (a ^ b) ^ ONES64
                else:
                    raise SimulationError(
                        f"cannot evaluate 2-input node type {gtype!r}"
                    )
            else:
                if gtype == GateType.BUF:
                    out = a
                elif gtype == GateType.NOT:
                    out = a ^ ONES64
                else:
                    raise SimulationError(
                        f"cannot evaluate 1-input node type {gtype!r}"
                    )
            values[group.nodes] = out
        for node, gtype, srcs in level.odd:
            values[node] = _eval_odd_gate(gtype, values, srcs)

    def propagate(self, values: np.ndarray) -> np.ndarray:
        """Run all levels over ``values`` (inputs already filled) in place."""
        for level in self.levels:
            self.eval_level(level, values)
        return values


def _eval_odd_gate(gtype: GateType, values: np.ndarray,
                   srcs: Sequence[int]) -> np.ndarray:
    """Evaluate one arity-0 or arity>2 gate on a value tensor."""
    if gtype == GateType.CONST0:
        return np.zeros(values.shape[1:], dtype=np.uint64)
    if gtype == GateType.CONST1:
        return np.full(values.shape[1:], ONES64, dtype=np.uint64)
    if gtype == GateType.BUF:
        return values[srcs[0]].copy()
    if gtype == GateType.NOT:
        return values[srcs[0]] ^ ONES64
    if gtype in (GateType.AND, GateType.NAND):
        acc = values[srcs[0]].copy()
        for s in srcs[1:]:
            acc &= values[s]
        return acc if gtype == GateType.AND else acc ^ ONES64
    if gtype in (GateType.OR, GateType.NOR):
        acc = values[srcs[0]].copy()
        for s in srcs[1:]:
            acc |= values[s]
        return acc if gtype == GateType.OR else acc ^ ONES64
    if gtype in (GateType.XOR, GateType.XNOR):
        acc = values[srcs[0]].copy()
        for s in srcs[1:]:
            acc ^= values[s]
        return acc if gtype == GateType.XOR else acc ^ ONES64
    raise SimulationError(f"cannot evaluate node type {gtype!r}")


def simulate_matrix_levelized(circ: CompiledCircuit, inputs: np.ndarray,
                              schedule: LevelSchedule | None = None
                              ) -> np.ndarray:
    """Like :func:`simulate_matrix`, but through a :class:`LevelSchedule`.

    Passing a prebuilt ``schedule`` amortizes levelization across calls;
    the fault-simulation backend does exactly that.
    """
    if inputs.shape[0] != circ.num_inputs:
        raise SimulationError(
            f"{circ.name}: matrix has {inputs.shape[0]} input rows, "
            f"expected {circ.num_inputs}"
        )
    if schedule is None:
        schedule = LevelSchedule(circ)
    values = np.zeros((circ.num_nodes,) + inputs.shape[1:], dtype=np.uint64)
    values[: circ.num_inputs] = inputs
    return schedule.propagate(values)


def simulate(circ: CompiledCircuit, patterns: PatternSet) -> List[int]:
    """Big-int-word interface over the numpy backend.

    Returns the same per-node big-int list as :func:`repro.sim.bitsim.
    simulate`, so the two backends are drop-in interchangeable (and the
    test suite asserts they agree).
    """
    if patterns.num_inputs != circ.num_inputs:
        raise SimulationError(
            f"{circ.name}: pattern set has {patterns.num_inputs} inputs, "
            f"circuit has {circ.num_inputs}"
        )
    matrix = words_to_matrix(patterns.words, patterns.num_patterns)
    values = simulate_matrix(circ, matrix)
    return [
        matrix_row_to_int(values[node], patterns.num_patterns)
        for node in range(circ.num_nodes)
    ]
