"""Logic simulation: bit-parallel (big-int and numpy), 3-valued, patterns.

Single vectors live in :class:`PatternSet`; two-pattern transition tests
(launch/capture pairs) in :class:`PatternPairSet`.
"""

from repro.sim.bitsim import (
    BitSimulator,
    eval_gate_words,
    simulate,
    simulate_outputs,
    simulate_vector,
    simulate_words,
)
from repro.sim.pattern_io import (
    read_pattern_pairs,
    read_pattern_table,
    read_patterns,
    write_pattern_pairs,
    write_pattern_table,
    write_patterns,
)
from repro.sim.patterns import PatternPairSet, PatternSet
from repro.sim.threeval import ONE, X, ZERO, eval_gate3, simulate3

__all__ = [
    "BitSimulator",
    "ONE",
    "PatternPairSet",
    "PatternSet",
    "X",
    "ZERO",
    "eval_gate3",
    "eval_gate_words",
    "read_pattern_pairs",
    "read_pattern_table",
    "read_patterns",
    "simulate",
    "simulate3",
    "simulate_outputs",
    "simulate_vector",
    "simulate_words",
    "write_pattern_pairs",
    "write_pattern_table",
    "write_patterns",
]
