"""Test pattern file I/O.

Three plain-text formats:

* **bitstring** — one pattern per line, MSB = input 0, comments with
  ``#``.  The lowest-common-denominator exchange format::

      # 3 inputs
      101
      010

* **table** — a header naming the inputs, then rows; survives column
  reordering and makes files self-describing::

      inputs: a b sel
      1 0 1
      0 1 0

* **pair bitstring** — one two-pattern test per line, launch then
  capture vector separated by whitespace (transition-fault tests)::

      # 3 inputs, launch capture
      101 110
      010 011
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.circuit.flatten import CompiledCircuit
from repro.errors import SimulationError
from repro.sim.patterns import PatternPairSet, PatternSet


def _source_text(source: Union[str, Path]) -> str:
    """Resolve a text-or-path argument to file contents.

    One rule for every reader: a :class:`~pathlib.Path` is always read; a
    string containing a newline is always inline text; otherwise the
    string is read as a file when one exists at that path, and treated as
    a (single-line) inline document when none does — so parse errors for
    malformed one-liners point at the content, not at a missing file.
    """
    if isinstance(source, Path):
        return source.read_text()
    if "\n" in source:
        return source
    try:
        path = Path(source)
        if path.is_file():
            return path.read_text()
    except OSError:
        pass  # e.g. a name too long to stat: inline text
    return source


def write_patterns(patterns: PatternSet,
                   destination: Optional[Path] = None) -> str:
    """Serialize in bitstring format."""
    lines = [f"# {patterns.num_inputs} inputs, {patterns.num_patterns} patterns"]
    for vector in patterns.iter_vectors():
        lines.append("".join(str(bit) for bit in vector))
    text = "\n".join(lines) + "\n"
    if destination is not None:
        destination.write_text(text)
    return text


def read_patterns(source: Union[str, Path],
                  num_inputs: Optional[int] = None) -> PatternSet:
    """Parse bitstring format (text or path)."""
    text = _source_text(source)
    vectors: List[List[int]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if set(line) - {"0", "1"}:
            raise SimulationError(
                f"line {line_no}: {line!r} is not a 0/1 bitstring"
            )
        vectors.append([int(ch) for ch in line])
    if not vectors and num_inputs is None:
        raise SimulationError("empty pattern file needs num_inputs")
    return PatternSet.from_vectors(vectors, num_inputs)


def write_pattern_pairs(pairs: PatternPairSet,
                        destination: Optional[Path] = None) -> str:
    """Serialize two-pattern tests in pair bitstring format."""
    lines = [
        f"# {pairs.num_inputs} inputs, {pairs.num_patterns} pairs, "
        "launch capture"
    ]
    for v1, v2 in pairs.iter_pairs():
        lines.append(
            "".join(str(b) for b in v1) + " " + "".join(str(b) for b in v2)
        )
    text = "\n".join(lines) + "\n"
    if destination is not None:
        destination.write_text(text)
    return text


def read_pattern_pairs(source: Union[str, Path],
                       num_inputs: Optional[int] = None) -> PatternPairSet:
    """Parse pair bitstring format (text or path)."""
    text = _source_text(source)
    rows: List[Tuple[List[int], List[int]]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        cells = line.split()
        if len(cells) != 2:
            raise SimulationError(
                f"line {line_no}: expected `launch capture`, got {line!r}"
            )
        for cell in cells:
            if set(cell) - {"0", "1"}:
                raise SimulationError(
                    f"line {line_no}: {cell!r} is not a 0/1 bitstring"
                )
        if len(cells[0]) != len(cells[1]):
            raise SimulationError(
                f"line {line_no}: launch has {len(cells[0])} bits, "
                f"capture has {len(cells[1])}"
            )
        rows.append(([int(c) for c in cells[0]], [int(c) for c in cells[1]]))
    if not rows and num_inputs is None:
        raise SimulationError("empty pattern-pair file needs num_inputs")
    return PatternPairSet.from_vector_pairs(rows, num_inputs)


def write_pattern_table(patterns: PatternSet, circ: CompiledCircuit,
                        destination: Optional[Path] = None) -> str:
    """Serialize in table format with the circuit's input names."""
    if patterns.num_inputs != circ.num_inputs:
        raise SimulationError(
            f"pattern set has {patterns.num_inputs} inputs, "
            f"circuit has {circ.num_inputs}"
        )
    names = [circ.names[i] for i in range(circ.num_inputs)]
    lines = ["inputs: " + " ".join(names)]
    for vector in patterns.iter_vectors():
        lines.append(" ".join(str(bit) for bit in vector))
    text = "\n".join(lines) + "\n"
    if destination is not None:
        destination.write_text(text)
    return text


def read_pattern_table(source: Union[str, Path],
                       circ: CompiledCircuit) -> PatternSet:
    """Parse table format, permuting columns to the circuit's PI order."""
    text = _source_text(source)
    lines = [
        line.split("#", 1)[0].strip()
        for line in text.splitlines()
    ]
    lines = [line for line in lines if line]
    if not lines or not lines[0].startswith("inputs:"):
        raise SimulationError("table format needs an `inputs:` header")
    header = lines[0][len("inputs:"):].split()
    expected = [circ.names[i] for i in range(circ.num_inputs)]
    if sorted(header) != sorted(expected):
        raise SimulationError(
            f"table columns {header} do not match circuit inputs {expected}"
        )
    column_of = {name: k for k, name in enumerate(header)}
    permutation = [column_of[name] for name in expected]

    vectors: List[List[int]] = []
    for line_no, line in enumerate(lines[1:], start=2):
        cells = line.split()
        if len(cells) != len(header):
            raise SimulationError(
                f"line {line_no}: {len(cells)} columns, expected {len(header)}"
            )
        try:
            row = [int(c) for c in cells]
        except ValueError:
            raise SimulationError(f"line {line_no}: non-integer cell")
        vectors.append([row[k] for k in permutation])
    return PatternSet.from_vectors(vectors, circ.num_inputs)
